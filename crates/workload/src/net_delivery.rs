//! NPS-style delivery experiment (DESIGN §18): the paper's QtPlay hands
//! retrieved frames to NPS, the user-level network engine, and the
//! intro's travel coordinator watches over a shared 10 Mbps Ethernet.
//! This workload drives the `cras-net` subsystem end to end on that
//! segment: per-session playout buffers, EDF-paced transmission,
//! multicast fan-out for batched-join audiences, credit backpressure
//! for a slow drainer, and NAK-driven retransmission under injected
//! loss.
//!
//! One scenario, four questions:
//!
//! * **unicast** — a five-viewer joined audience plus solo titles, each
//!   viewer shipped its own copy. Seven MPEG-1 streams oversubscribe
//!   the 10 Mbps segment, so the send queue grows past the playout
//!   slack and frames start missing deadlines.
//! * **multicast** — same audience, joined group carried by one
//!   transmission per shared link. Bytes on the wire drop by the group
//!   fan-out and the lateness disappears: the segment is back under
//!   half load.
//! * **slow** — one extra viewer drains 1.3× slower than real time
//!   behind tight watermarks. Its session must park (and later resume)
//!   its own feeding stream without adding a single late frame to
//!   anyone else.
//! * **loss sweep** — deterministic drop probabilities on the shared
//!   link; gap-exposure NAKs trigger unicast retransmissions that ride
//!   the same EDF queue inside the playout slack.

use cras_media::StreamProfile;
use cras_net::{LinkParams, NetFaults, SessionCfg};
use cras_sim::{Duration, Instant};
use cras_sys::{SysConfig, System};

use crate::result::{Figure, KvTable};

/// One delivery scenario variant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetMode {
    /// Every viewer gets its own transmission.
    Unicast,
    /// Joined groups share one transmission per link.
    Multicast,
    /// Multicast plus one slow-draining viewer behind tight watermarks.
    SlowClient,
    /// Multicast plus a deterministic drop injector on the shared link.
    Loss {
        /// Per-packet drop probability.
        drop_prob: f64,
    },
}

impl NetMode {
    /// Short label for tables and JSON points.
    pub fn label(&self) -> String {
        match self {
            NetMode::Unicast => "unicast".into(),
            NetMode::Multicast => "multicast".into(),
            NetMode::SlowClient => "slow".into(),
            NetMode::Loss { drop_prob } => format!("loss{:.0}pct", drop_prob * 100.0),
        }
    }
}

/// Scenario parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Joined audience size on the hot title.
    pub viewers: usize,
    /// Solo titles, one viewer each.
    pub solo: usize,
    /// Measured wall-clock span after the last playback start.
    pub measure: Duration,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for NetParams {
    fn default() -> NetParams {
        NetParams {
            viewers: 5,
            solo: 2,
            measure: Duration::from_secs(30),
            seed: 0x4E_45_54, // "NET"
        }
    }
}

/// Per-session delivery summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionSummary {
    /// Client id.
    pub client: u32,
    /// Frames consumed on time.
    pub played: u64,
    /// Frames that missed their playout deadline.
    pub late: u64,
    /// Times the session parked its feeding stream.
    pub parks: u64,
    /// Times the feeding stream was resumed for it.
    pub resumes: u64,
}

/// Outcome of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct NetOutcome {
    /// Scenario variant label.
    pub mode: String,
    /// Sessions attached (viewers + solos, plus the slow client).
    pub sessions: usize,
    /// Bytes serialized onto the shared link.
    pub link_bytes: u64,
    /// Bytes multicast suppression kept off the wire.
    pub multicast_saved: u64,
    /// NAK-driven retransmission bytes.
    pub retransmit_bytes: u64,
    /// High-water mark of the link send queue.
    pub max_queued_bytes: u64,
    /// Frames played on time, all sessions.
    pub played: u64,
    /// Frames late, all sessions.
    pub late: u64,
    /// NAKs sent by clients.
    pub naks: u64,
    /// Retransmissions enqueued.
    pub retransmits: u64,
    /// Stream parks driven by the delivery backpressure (sys metric).
    pub net_parks: u64,
    /// Per-session summaries, client-id order.
    pub per_session: Vec<SessionSummary>,
    /// The slow client's id, when the mode has one.
    pub slow_client: Option<u32>,
    /// Canonical JSON of the whole delivery state (determinism unit).
    pub net_json: String,
}

/// Runs one delivery scenario.
pub fn run_one(p: &NetParams, mode: NetMode) -> NetOutcome {
    let mut cfg = SysConfig::default();
    cfg.seed = p.seed;
    cfg.server.volumes = 2;
    cfg.server.buffer_budget = 64 << 20;
    // Same-title viewers arriving before the leader's begin coalesce
    // onto one read stream — the audience multicast fans out.
    cfg.server.join_window = Duration::from_secs(2);
    let mut sys = System::new(cfg);

    let secs = p.measure.as_secs_f64() + 8.0;
    let hot = sys.record_movie("hot.mov", StreamProfile::mpeg1(), secs);
    let solos: Vec<_> = (0..p.solo)
        .map(|i| sys.record_movie(&format!("solo{i}.mov"), StreamProfile::mpeg1(), secs))
        .collect();

    let link = sys.net_add_link(LinkParams::ethernet_10mbps());
    match mode {
        NetMode::Unicast => {}
        NetMode::Multicast | NetMode::SlowClient => sys.net_set_multicast(true),
        NetMode::Loss { drop_prob } => {
            sys.net_set_multicast(true);
            sys.net_set_link_faults(link, Some(NetFaults::loss(drop_prob, p.seed ^ 0xD05)));
        }
    }

    let mut clients = Vec::new();
    for _ in 0..p.viewers {
        clients.push(sys.add_cras_player(&hot, 1).expect("hot viewer admitted"));
    }
    for m in &solos {
        clients.push(sys.add_cras_player(m, 1).expect("solo viewer admitted"));
    }
    let slow = if mode == NetMode::SlowClient {
        let m = sys.record_movie("slow.mov", StreamProfile::mpeg1(), secs);
        Some(sys.add_cras_player(&m, 1).expect("slow viewer admitted"))
    } else {
        None
    };

    let session_cfg = SessionCfg {
        playout_delay: Duration::from_millis(600),
        ..SessionCfg::default()
    };
    for &c in &clients {
        sys.net_attach(c, link, session_cfg);
    }
    if let Some(c) = slow {
        sys.net_attach(
            c,
            link,
            SessionCfg {
                playout_delay: Duration::from_millis(600),
                high_watermark: 128 << 10,
                low_watermark: 64 << 10,
                drain_scale: 1.3,
            },
        );
    }

    // Start everyone at the same instant so the hot title's followers
    // land inside the leader's join window.
    let mut start = Instant::ZERO;
    for &c in clients.iter().chain(slow.iter()) {
        start = sys.start_playback(c).max(start);
    }
    sys.run_until(start + p.measure);

    let ls = &sys.net.link(link).stats;
    let per_session: Vec<SessionSummary> = sys
        .net
        .sessions()
        .map(|s| SessionSummary {
            client: s.id,
            played: s.stats.frames_played,
            late: s.stats.late_frames,
            parks: s.stats.parks,
            resumes: s.stats.resumes,
        })
        .collect();
    NetOutcome {
        mode: mode.label(),
        sessions: per_session.len(),
        link_bytes: ls.bytes_sent,
        multicast_saved: ls.multicast_saved_bytes,
        retransmit_bytes: ls.retransmit_bytes,
        max_queued_bytes: ls.max_queued_bytes,
        played: per_session.iter().map(|s| s.played).sum(),
        late: per_session.iter().map(|s| s.late).sum(),
        naks: sys.net.sessions().map(|s| s.stats.naks_sent).sum(),
        retransmits: sys.net.sessions().map(|s| s.stats.retransmits).sum(),
        net_parks: sys.metrics.net_parks,
        per_session,
        slow_client: slow.map(|c| c.0),
        net_json: sys.net.canonical_json(),
    }
}

/// The full suite: unicast vs multicast, the slow client, and a loss
/// sweep. Returns the rendered table, the bytes/lateness figure and
/// every outcome.
pub fn suite(p: &NetParams) -> (KvTable, Figure, Vec<NetOutcome>) {
    let modes = [
        NetMode::Unicast,
        NetMode::Multicast,
        NetMode::SlowClient,
        NetMode::Loss { drop_prob: 0.0 },
        NetMode::Loss { drop_prob: 0.01 },
        NetMode::Loss { drop_prob: 0.04 },
    ];
    let outs: Vec<NetOutcome> = modes.iter().map(|&m| run_one(p, m)).collect();
    let mut t = KvTable::new(
        "net_delivery",
        &format!(
            "NPS-style delivery on a shared 10 Mbps Ethernet \
             ({} joined viewers + {} solo titles)",
            p.viewers, p.solo
        ),
    );
    for o in &outs {
        t.row(
            &o.mode,
            format!(
                "sessions={} wire={:.2}MB saved={:.2}MB retx={}B queue_max={}B \
                 played={} late={} naks={} parks={}",
                o.sessions,
                o.link_bytes as f64 / 1e6,
                o.multicast_saved as f64 / 1e6,
                o.retransmit_bytes,
                o.max_queued_bytes,
                o.played,
                o.late,
                o.naks,
                o.net_parks,
            ),
            "",
        );
    }
    let mut f = Figure::new(
        "net_delivery",
        "Bytes on the shared wire and late frames per delivery mode",
        "mode index (unicast, multicast, slow, loss 0/1/4 %)",
        "bytes (MB) / frames",
    );
    for (i, o) in outs.iter().enumerate() {
        let x = i as f64;
        f.series_mut("wire MB").push(x, o.link_bytes as f64 / 1e6);
        f.series_mut("late frames").push(x, o.late as f64);
        f.series_mut("retransmits").push(x, o.retransmits as f64);
    }
    (t, f, outs)
}

/// Hand-rolled JSON for the `BENCH_net_delivery` trajectory artifact.
pub fn points_json(outs: &[NetOutcome]) -> String {
    let mut s = String::from("{\"points\":[");
    for (i, o) in outs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"mode\":\"{}\",\"sessions\":{},\"link_bytes\":{},\
             \"multicast_saved\":{},\"retransmit_bytes\":{},\
             \"max_queued_bytes\":{},\"played\":{},\"late\":{},\"naks\":{},\
             \"retransmits\":{},\"net_parks\":{}}}",
            o.mode,
            o.sessions,
            o.link_bytes,
            o.multicast_saved,
            o.retransmit_bytes,
            o.max_queued_bytes,
            o.played,
            o.late,
            o.naks,
            o.retransmits,
            o.net_parks,
        ));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> NetParams {
        NetParams {
            viewers: 5,
            solo: 2,
            measure: Duration::from_secs(12),
            seed: 0x17E7,
        }
    }

    #[test]
    fn multicast_cuts_wire_bytes_without_adding_late_frames() {
        let p = quick_params();
        let uni = run_one(&p, NetMode::Unicast);
        let multi = run_one(&p, NetMode::Multicast);
        // Seven unicast MPEG-1 copies oversubscribe 10 Mbps: the EDF
        // queue outgrows the playout slack and frames go late.
        assert!(
            uni.late > 0,
            "oversubscribed unicast never missed a deadline: {uni:?}"
        );
        assert!(
            multi.link_bytes < uni.link_bytes,
            "multicast did not reduce wire bytes: {} vs {}",
            multi.link_bytes,
            uni.link_bytes
        );
        assert!(multi.multicast_saved > 0, "nothing suppressed: {multi:?}");
        assert_eq!(
            multi.late, 0,
            "multicast added late frames on an uncontended wire: {multi:?}"
        );
        assert!(multi.played > 0);
    }

    #[test]
    fn slow_client_backpressures_only_its_own_session() {
        let p = quick_params();
        let out = run_one(&p, NetMode::SlowClient);
        let slow = out.slow_client.expect("mode has a slow client");
        let me = out
            .per_session
            .iter()
            .find(|s| s.client == slow)
            .expect("slow session exists");
        assert!(me.parks > 0, "slow drain never hit the high watermark");
        assert!(me.resumes > 0, "parked stream never resumed");
        assert!(out.net_parks > 0, "sys never parked the feeding stream");
        for s in out.per_session.iter().filter(|s| s.client != slow) {
            assert_eq!(s.parks, 0, "victim session parked: {s:?}");
            assert_eq!(s.late, 0, "victim session went late: {s:?}");
        }
    }

    #[test]
    fn loss_is_repaired_by_nak_retransmission_inside_the_slack() {
        let p = quick_params();
        let clean = run_one(&p, NetMode::Loss { drop_prob: 0.0 });
        assert_eq!(clean.naks, 0, "zero-probability injector NAKed");
        assert_eq!(clean.late, 0);
        let lossy = run_one(&p, NetMode::Loss { drop_prob: 0.01 });
        assert!(lossy.naks > 0, "1% loss never exposed a gap: {lossy:?}");
        assert!(lossy.retransmits > 0, "no retransmissions: {lossy:?}");
        assert!(lossy.retransmit_bytes > 0);
        // The 600 ms slack covers a NAK round trip many times over, so
        // repair keeps lateness well under the raw loss rate.
        assert!(
            lossy.late * 50 <= lossy.played,
            "late {} of {} played — retransmission is not repairing",
            lossy.late,
            lossy.played
        );
    }

    #[test]
    fn net_delivery_is_deterministic() {
        let p = quick_params();
        let run = || run_one(&p, NetMode::Loss { drop_prob: 0.04 });
        assert_eq!(run(), run(), "same seed must reproduce bit-for-bit");
    }
}
