//! Coded-read steering experiment (DESIGN §17): under rotating-parity
//! placement, a spindle loaded with non-real-time traffic can be
//! bypassed — the planner reads the row's other `g−1` units (siblings +
//! parity) and XORs the hot spindle's unit back instead of queueing
//! behind the noise.
//!
//! The experiment plays the same parity-placed movies twice with the
//! same seed: once with steering off (every read goes to its home
//! spindle) and once with steering on (the unified load signal — bytes
//! planned this interval, live outstanding queue depth, recent
//! completion lag — decides per run). Background `cat` readers are
//! pinned to one band volume so the load is *skewed*: only steering can
//! route around it. The contrast is the tail of the interval wall span
//! (issue to last completion); the invariant is that delivery is
//! untouched — the same frames and bytes reach every player in both
//! modes, and nothing is dropped.

use cras_core::PlacementPolicy;
use cras_disk::{FaultInjector, VolumeId};
use cras_media::StreamProfile;
use cras_sim::{Duration, Instant};
use cras_sys::{SysConfig, System};

use crate::result::{Figure, KvTable};

/// Retry-stall profile of the hot spindle: about half its operations
/// pay a recalibration-style penalty. Together with the pinned `cat`
/// traffic this is what the unified load signal sees — queue depth from
/// the cats, completion lag from the stalls.
const STALL_PROB: f64 = 0.5;
const STALL_PENALTY: Duration = Duration::from_millis(50);

/// First post-start interval included in the span measurements (the
/// prefetch ramp issues double batches and would skew the tail).
const WARMUP_INTERVALS: u64 = 4;

/// Outcome of one run (one mode).
#[derive(Clone, Debug, PartialEq)]
pub struct SteeredOutcome {
    /// Whether coded-read steering was enabled.
    pub steer: bool,
    /// Streams requested.
    pub requested: usize,
    /// Streams the admission test accepted.
    pub admitted: usize,
    /// Frames dropped by the admitted players (must stay 0 in both
    /// modes — steering is an optimisation, not a correctness valve).
    pub dropped: u64,
    /// Deadline warnings from the server.
    pub overruns: u64,
    /// Reads lost (must stay 0: no volume ever fails here).
    pub lost_reads: u64,
    /// Intervals in which at least one stream was steered.
    pub steered_intervals: u64,
    /// Stream-intervals steered.
    pub steered_stream_intervals: u64,
    /// Completed post-warmup intervals measured.
    pub intervals: usize,
    /// Mean wall span (issue to last completion) of those intervals,
    /// seconds.
    pub mean_span: f64,
    /// 95th-percentile wall span, seconds — the acceptance metric:
    /// steering must cut this below the unsteered run.
    pub tail_span: f64,
    /// Per-player `(frames shown, bytes consumed)`, in player order —
    /// the delivery fingerprint that must be identical across modes.
    pub delivered: Vec<(u64, u64)>,
}

/// Runs one steering scenario: `requested` parity streams over
/// `volumes` volumes (one band, `group = volumes`), with `bg_readers`
/// flat-out 64 KB background readers pinned to the hot volume.
pub fn run_one(
    requested: usize,
    volumes: usize,
    bg_readers: usize,
    steer: bool,
    measure: Duration,
    seed: u64,
) -> SteeredOutcome {
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    cfg.server.volumes = volumes;
    cfg.server.placement = PlacementPolicy::Parity { group: volumes };
    cfg.server.buffer_budget = 64 << 20;
    cfg.server.steer_reads = steer;
    let mut sys = System::new(cfg);
    let movies: Vec<_> = (0..requested)
        .map(|i| {
            sys.record_movie(
                &format!("sr{i}.mov"),
                StreamProfile::mpeg1(),
                measure.as_secs_f64() + 8.0,
            )
        })
        .collect();
    // Skew one band volume: every `cat` pinned to it (queue depth), and
    // a retry-stall injector on its disk (completion lag). Row 0's
    // parity lands on volume 0 in this layout, so volume 1 is
    // data-heavy early on — the worst spindle to lose to noise.
    let hot = 1u32.min(volumes as u32 - 1);
    for i in 0..bg_readers {
        sys.add_bg_reader_on(hot, &format!("bg{i}"), 32 << 20, 1 << 20, Duration::ZERO);
    }
    sys.disks
        .volume_mut(VolumeId(hot))
        .set_fault_injector(Some(FaultInjector::new(
            STALL_PROB,
            STALL_PENALTY,
            seed ^ 0x57A11,
        )));
    let mut players = Vec::new();
    for m in &movies {
        match sys.add_cras_player(m, 1) {
            Ok(c) => players.push(c),
            Err(_) => break,
        }
    }
    let admitted = players.len();
    let mut start = Instant::ZERO;
    for &p in &players {
        start = sys.start_playback(p).max(start);
        // De-lockstep the identical movies so each interval's reads
        // spread over the band instead of marching on one stripe front.
        sys.run_for(Duration::from_millis(300));
    }
    sys.start_bg();
    sys.run_until(start + measure);

    let dropped = players
        .iter()
        .map(|c| sys.players[&c.0].stats.frames_dropped)
        .sum();
    let delivered = players
        .iter()
        .map(|c| {
            let s = &sys.players[&c.0].stats;
            (s.frames_shown, s.bytes_consumed)
        })
        .collect();
    let started_intervals =
        start.since(Instant::ZERO).as_nanos() / cfg.server.interval.as_nanos().max(1);
    let min_index = started_intervals + WARMUP_INTERVALS;
    let mut spans: Vec<f64> = sys
        .metrics
        .interval_walls()
        .iter()
        .filter(|w| w.index >= min_index)
        .filter_map(|w| w.span())
        .collect();
    spans.sort_by(f64::total_cmp);
    let n = spans.len();
    let mean = spans.iter().sum::<f64>() / (n as f64).max(1.0);
    let tail = if n == 0 {
        0.0
    } else {
        spans[((n - 1) as f64 * 0.95) as usize]
    };
    SteeredOutcome {
        steer,
        requested,
        admitted,
        dropped,
        overruns: sys.metrics.overruns,
        lost_reads: sys.metrics.lost_reads + sys.cras.stats().lost_reads,
        steered_intervals: sys.metrics.steered_intervals,
        steered_stream_intervals: sys.metrics.steered_stream_intervals,
        intervals: n,
        mean_span: mean,
        tail_span: tail,
        delivered,
    }
}

/// Runs the scenario with steering off then on (same seed, same
/// movies) and renders the contrast.
pub fn contrast(
    requested: usize,
    volumes: usize,
    bg_readers: usize,
    measure: Duration,
    seed: u64,
) -> (KvTable, Figure, Vec<SteeredOutcome>) {
    assert!(volumes >= 2, "steering needs at least two volumes");
    let out: Vec<SteeredOutcome> = [false, true]
        .iter()
        .map(|&steer| run_one(requested, volumes, bg_readers, steer, measure, seed))
        .collect();
    let mut t = KvTable::new(
        "steered_reads",
        &format!(
            "Coded-read steering around a hot spindle \
             ({volumes} volumes, group {volumes}, {bg_readers} cats on one volume)"
        ),
    );
    for o in &out {
        t.row(
            if o.steer { "steered" } else { "direct" },
            format!(
                "admitted={} drops={} warnings={} lost={} steered_ivals={} \
                 steered_stream_ivals={} intervals={} span mean={:.1}ms p95={:.1}ms",
                o.admitted,
                o.dropped,
                o.overruns,
                o.lost_reads,
                o.steered_intervals,
                o.steered_stream_intervals,
                o.intervals,
                o.mean_span * 1e3,
                o.tail_span * 1e3,
            ),
            "",
        );
    }
    let mut f = Figure::new(
        "steered_reads",
        "Interval wall span with and without coded-read steering",
        "mode (0 = direct, 1 = steered)",
        "span (s)",
    );
    for o in &out {
        let x = f64::from(u8::from(o.steer));
        f.series_mut("mean span").push(x, o.mean_span);
        f.series_mut("p95 span").push(x, o.tail_span);
    }
    (t, f, out)
}

/// Hand-rolled JSON for the `BENCH_steered_reads` trajectory artifact:
/// one object per mode with the span and delivery aggregates.
pub fn points_json(outs: &[SteeredOutcome]) -> String {
    let mut s = String::from("{\"points\":[");
    for (i, o) in outs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let (frames, bytes) = o
            .delivered
            .iter()
            .fold((0u64, 0u64), |(f, b), (df, db)| (f + df, b + db));
        s.push_str(&format!(
            "{{\"steer\":{},\"admitted\":{},\"dropped\":{},\"lost\":{},\
             \"steered_stream_intervals\":{},\"intervals\":{},\
             \"mean_span\":{:.6},\"tail_span\":{:.6},\
             \"frames\":{frames},\"bytes\":{bytes}}}",
            o.steer,
            o.admitted,
            o.dropped,
            o.lost_reads,
            o.steered_stream_intervals,
            o.intervals,
            o.mean_span,
            o.tail_span,
        ));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steering_cuts_the_tail_without_changing_delivery() {
        let (_t, _f, outs) = contrast(4, 4, 3, Duration::from_secs(10), 0x57E);
        let [direct, steered] = outs.as_slice() else {
            panic!("expected two outcomes, got {outs:?}");
        };
        assert!(!direct.steer && steered.steer);
        for o in [direct, steered] {
            assert_eq!(o.admitted, o.requested, "admission rejected: {o:?}");
            assert_eq!(o.dropped, 0, "dropped frames: {o:?}");
            assert_eq!(o.lost_reads, 0, "reads lost with no failure: {o:?}");
            assert!(o.intervals >= 10, "too few measured intervals: {o:?}");
        }
        assert_eq!(
            direct.steered_stream_intervals, 0,
            "steering off must never steer: {direct:?}"
        );
        assert!(
            steered.steered_stream_intervals > 0,
            "hot spindle never bypassed: {steered:?}"
        );
        assert!(
            steered.tail_span < direct.tail_span,
            "steered p95 {:.4}s not below direct {:.4}s",
            steered.tail_span,
            direct.tail_span
        );
        // The whole point: routing changed, delivery did not.
        assert_eq!(
            direct.delivered, steered.delivered,
            "steering altered delivered frames/bytes"
        );
    }

    #[test]
    fn steered_reads_is_deterministic() {
        let run = || run_one(2, 4, 2, true, Duration::from_secs(8), 0x57E2);
        assert_eq!(run(), run(), "same seed must reproduce bit-for-bit");
    }
}
