//! Fault-injection experiment: transient disk retry stalls vs the
//! deadline manager and the time-driven buffer.
//!
//! The paper's deadline-manager thread "executes the recovery action from
//! a missed deadline. Currently, CRAS notifies a warning message." This
//! experiment injects retry stalls into the disk and measures how the
//! warning count and the client experience degrade: double buffering
//! (`B_i = 2·A_i`) should absorb isolated stalls entirely, while heavy
//! fault rates surface as deadline warnings before they surface as
//! dropped frames.

use cras_media::StreamProfile;
use cras_sim::{Duration, Instant};
use cras_sys::{SysConfig, System};

use crate::result::KvTable;

/// Outcome at one fault rate.
#[derive(Clone, Copy, Debug)]
pub struct FaultOutcome {
    /// Fault probability per disk operation.
    pub prob: f64,
    /// Faults actually injected.
    pub injected: u64,
    /// Deadline warnings from the server.
    pub overruns: u64,
    /// Frames dropped by the clients.
    pub dropped: u64,
    /// Maximum frame delay (seconds).
    pub max_delay: f64,
}

/// Runs `streams` MPEG-1 players for `measure` at each fault rate.
pub fn sweep(
    probs: &[f64],
    streams: usize,
    measure: Duration,
    seed: u64,
) -> (KvTable, Vec<FaultOutcome>) {
    let mut out = Vec::new();
    for &prob in probs {
        let mut cfg = SysConfig::default();
        cfg.seed = seed;
        cfg.disk_fault_prob = prob;
        cfg.disk_fault_penalty = Duration::from_millis(25);
        cfg.server.buffer_budget = 64 << 20;
        let mut sys = System::new(cfg);
        let movies: Vec<_> = (0..streams)
            .map(|i| {
                sys.record_movie(
                    &format!("f{i}.mov"),
                    StreamProfile::mpeg1(),
                    measure.as_secs_f64() + 8.0,
                )
            })
            .collect();
        let players: Vec<_> = movies
            .iter()
            .map(|m| sys.add_cras_player(m, 1).expect("within admission"))
            .collect();
        let mut start = Instant::ZERO;
        for &p in &players {
            start = sys.start_playback(p).max(start);
        }
        sys.run_until(start + measure);
        let injected = sys
            .disk()
            .fault_injector()
            .map(|f| f.injected())
            .unwrap_or(0);
        let dropped = sys.players.values().map(|p| p.stats.frames_dropped).sum();
        let max_delay = sys
            .players
            .values()
            .map(|p| p.delay_summary().1)
            .fold(0.0, f64::max);
        out.push(FaultOutcome {
            prob,
            injected,
            overruns: sys.metrics.overruns,
            dropped,
            max_delay,
        });
    }
    let mut t = KvTable::new(
        "faults",
        &format!("Transient-fault injection ({streams} MPEG1 streams, 25 ms stalls)"),
    );
    for o in &out {
        t.row(
            &format!("p={:.2}", o.prob),
            format!(
                "faults={} warnings={} drops={} max_delay={:.1}ms",
                o.injected,
                o.overruns,
                o.dropped,
                o.max_delay * 1e3
            ),
            "",
        );
    }
    (t, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_buffering_absorbs_rare_faults() {
        let (_t, outs) = sweep(&[0.0, 0.02], 6, Duration::from_secs(12), 0xFA);
        let clean = outs[0];
        let rare = outs[1];
        assert_eq!(clean.injected, 0);
        assert_eq!(clean.dropped, 0);
        assert!(rare.injected > 0, "faults must fire");
        // Isolated 25 ms stalls hide entirely behind the 1 s of
        // double-buffered data.
        assert_eq!(rare.dropped, 0, "rare faults must not drop frames");
        assert!(rare.max_delay < 0.05, "max delay {}", rare.max_delay);
    }

    #[test]
    fn heavy_faults_raise_warnings_before_drops() {
        let (_t, outs) = sweep(&[0.6], 10, Duration::from_secs(12), 0xFB);
        let heavy = outs[0];
        assert!(heavy.injected > 100);
        // The deadline manager notices (warnings), even if the buffer
        // still shields most frames.
        assert!(
            heavy.overruns > 0,
            "deadline manager should warn: {heavy:?}"
        );
    }
}
