//! Figure 7 — per-frame delay over time: one video stream from each file
//! system while other activities access the same disk.
//!
//! "The result shows that the Unix file system causes larger delay
//! jitters of video frames than CRAS even when both file systems achieve
//! the same throughput."

use cras_media::StreamProfile;
use cras_sim::Duration;
use cras_sys::SchedMode;

use crate::result::Figure;
use crate::runner::{run_scenario, Scenario, Storage};

/// Trace configuration.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Config {
    /// Trace length.
    pub trace: Duration,
    /// Background readers.
    pub bg_readers: usize,
    /// Pause between background reads: the paper compares the two file
    /// systems "when both achieve the same throughput", so the load is
    /// throttled to keep the UFS player feasible on average while still
    /// colliding with it constantly.
    pub bg_pause: Duration,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            trace: Duration::from_secs(60),
            bg_readers: 2,
            bg_pause: Duration::from_millis(40),
            seed: 7_1996,
        }
    }
}

/// Runs both traces; also returns `(cras_summary, ufs_summary)` as
/// `(mean, max)` delays in seconds.
pub fn run(cfg: &Fig7Config) -> (Figure, (f64, f64), (f64, f64)) {
    let mut fig = Figure::new(
        "fig7",
        "Per-frame delay under background disk load",
        "time (s)",
        "delay (s)",
    );
    let mut summaries = Vec::new();
    for (name, storage) in [("CRAS", Storage::Cras), ("UFS", Storage::Ufs)] {
        let sc = Scenario {
            storage,
            streams: 1,
            profile: StreamProfile::mpeg1(),
            bg_readers: cfg.bg_readers,
            bg_pause: cfg.bg_pause,
            hogs: 0,
            sched: SchedMode::FixedPriority,
            measure: cfg.trace,
            seed: cfg.seed,
            enforce_admission: true,
        };
        let out = run_scenario(sc);
        let trace = &out.delay_traces[0];
        // Downsample to ~200 plotted points.
        let step = (trace.len() / 200).max(1);
        for (i, &(t, d)) in trace.iter().enumerate() {
            if i % step == 0 {
                fig.series_mut(name).push(t, d);
            }
        }
        summaries.push(out.delays[0]);
    }
    (fig, summaries[0], summaries[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ufs_jitter_exceeds_cras() {
        let cfg = Fig7Config {
            trace: Duration::from_secs(15),
            bg_readers: 2,
            bg_pause: Duration::from_millis(40),
            seed: 3,
        };
        let (fig, cras, ufs) = run(&cfg);
        assert_eq!(fig.series.len(), 2);
        assert!(
            ufs.1 > 3.0 * cras.1.max(0.001),
            "UFS max {} vs CRAS max {}",
            ufs.1,
            cras.1
        );
        assert!(ufs.0 > cras.0, "UFS mean {} vs CRAS mean {}", ufs.0, cras.0);
        // CRAS delay stays in the few-millisecond regime.
        assert!(cras.1 < 0.05, "CRAS max delay {}", cras.1);
    }
}
