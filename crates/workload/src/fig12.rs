//! Figure 12 and Table 4 — disk calibration (Appendix A).
//!
//! Figure 12 plots the measured seek curve of the ST32550N against its
//! linear approximation; Table 4 reports the measured parameters the
//! admission test consumes.

use cras_disk::calibrate::{calibrate, Calibration};
use cras_disk::DiskDevice;

use crate::result::{Figure, KvTable};

/// Runs the calibration micro-benchmarks.
pub fn run_calibration() -> Calibration {
    let mut dev: DiskDevice<u8> = DiskDevice::st32550n();
    calibrate(&mut dev, 64 * 1024)
}

/// Figure 12: seek time vs distance, measured and approximated.
pub fn fig12(cal: &Calibration) -> Figure {
    let mut fig = Figure::new(
        "fig12",
        "Disk seek time (ST32550N)",
        "distance (Mblock)",
        "seek time (ms)",
    );
    for s in &cal.seek_curve {
        let x = s.distance_blocks as f64 / 1e6;
        fig.series_mut("measured").push(x, s.time.as_millis_f64());
        fig.series_mut("linear-approx")
            .push(x, s.approx.as_millis_f64());
    }
    fig
}

/// Table 4: measured disk parameters.
pub fn table4(cal: &Calibration) -> KvTable {
    let p = cal.params;
    let mut t = KvTable::new("table4", "Actual disk parameters of our system");
    t.row(
        "D",
        format!("{:.2}", p.transfer_rate / 1e6),
        "MB/s (paper: 6.5)",
    );
    t.row(
        "T_seek_max",
        format!("{:.2}", p.t_seek_max.as_millis_f64()),
        "ms (paper: 17)",
    );
    t.row(
        "T_seek_min",
        format!("{:.2}", p.t_seek_min.as_millis_f64()),
        "ms (paper: 4)",
    );
    t.row(
        "T_rot",
        format!("{:.2}", p.t_rot.as_millis_f64()),
        "ms (paper: 8.33)",
    );
    t.row(
        "T_cmd",
        format!("{:.2}", p.t_cmd.as_millis_f64()),
        "ms (paper: 2)",
    );
    t.row("B_other", format!("{}", p.b_other / 1024), "KB (paper: 64)");
    t.row("N_cyl", format!("{}", p.n_cyl), "cylinders");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_has_both_series_over_full_stroke() {
        let cal = run_calibration();
        let fig = fig12(&cal);
        assert_eq!(fig.series.len(), 2);
        let measured = &fig.series[0];
        assert!(measured.points.len() >= 32);
        // Axis reaches past 3.5 Mblocks (the 2 GB disk in 512 B blocks).
        let max_x = measured.points.last().unwrap().0;
        assert!(max_x > 3.0, "max distance {max_x} Mblocks");
        // Seek times in the right band.
        assert!(measured.max_y() > 10.0 && measured.max_y() < 25.0);
    }

    #[test]
    fn table4_within_paper_bands() {
        let cal = run_calibration();
        let p = cal.params;
        assert!((p.transfer_rate / 1e6 - 6.5).abs() < 1.0);
        assert!((p.t_seek_max.as_millis_f64() - 17.0).abs() < 2.0);
        assert!((p.t_seek_min.as_millis_f64() - 4.0).abs() < 1.5);
        assert!((p.t_rot.as_millis_f64() - 8.33).abs() < 0.1);
        let t = table4(&cal);
        assert_eq!(t.rows.len(), 7);
    }
}
