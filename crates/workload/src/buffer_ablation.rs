//! Buffer-design ablation — §2.4's argument, quantified.
//!
//! A 30 fps stream fills a buffer at its recording rate while the client
//! consumes at 10 fps (the dynamic-QOS situation). With the traditional
//! FIFO, the buffer fills with old frames and *new* data is dropped; the
//! client's picture grows steadily staler. The time-driven buffer ages
//! frames out by timestamp instead, so the client always sees the current
//! frame — no feedback protocol needed.
//!
//! Both buffers receive identical server-fill schedules; only the data
//! structure differs.

use cras_core::{BufferedChunk, FifoBuffer, TimeDrivenBuffer};
use cras_media::StreamProfile;
use cras_sim::{Duration, Instant, Rng};

use crate::result::KvTable;

/// Outcome for one buffer design.
#[derive(Clone, Copy, Debug)]
pub struct BufferOutcome {
    /// Frames the client displayed.
    pub displayed: u64,
    /// Mean staleness of displayed frames (intended media time − frame
    /// timestamp, seconds; 0 = always current).
    pub mean_staleness: f64,
    /// Worst staleness (seconds).
    pub max_staleness: f64,
    /// New chunks dropped at the buffer (FIFO failure mode) or aged out
    /// by timestamp (time-driven behaviour).
    pub discarded: u64,
}

/// Runs both designs for `secs` seconds of a 30 fps stream consumed at
/// `client_fps`.
pub fn run(secs: f64, client_fps: f64, seed: u64) -> (KvTable, BufferOutcome, BufferOutcome) {
    let mut rng = Rng::new(seed);
    let table = cras_media::generate_chunks(&StreamProfile::mpeg1(), secs, &mut rng);
    // Both buffers sized like the admission test would (2 intervals of
    // 0.5 s at the stream rate).
    let capacity = 200_000u64;
    let jitter = Duration::from_millis(100);

    // Fill schedule: the server posts each interval's chunks at the
    // interval boundary (batch arrival, like the real pipeline).
    let interval = Duration::from_millis(500);

    // Time-driven run.
    let mut tdb = TimeDrivenBuffer::new(capacity, jitter);
    let mut fifo = FifoBuffer::new(capacity);
    let mut td_out = (0u64, 0.0f64, 0.0f64);
    let mut ff_out = (0u64, 0.0f64, 0.0f64);

    let client_period = Duration::from_secs_f64(1.0 / client_fps);
    let total = Duration::from_secs_f64(secs);
    let mut next_fill = Duration::ZERO;
    let mut fill_idx = 0usize;
    let mut next_client = Duration::ZERO;
    let mut t = Duration::ZERO;
    while t <= total {
        // Next event: fill batch or client sample.
        t = next_fill.min(next_client);
        if t > total {
            break;
        }
        if t == next_fill {
            // Post one interval of chunks (media [t, t+interval)).
            let upto = t + interval;
            while fill_idx < table.len() {
                let c = table.chunks()[fill_idx];
                if c.timestamp >= upto {
                    break;
                }
                let bc = BufferedChunk {
                    index: c.index,
                    timestamp: c.timestamp,
                    duration: c.duration,
                    size: c.size,
                    posted_at: Instant::ZERO + t,
                };
                tdb.put(bc, t);
                fifo.put(bc);
                fill_idx += 1;
            }
            next_fill = upto;
        }
        if t == next_client {
            // The client wants the frame for media time `t`.
            if let Some(c) = tdb.get(t) {
                let staleness = t.saturating_since_dur(c.timestamp);
                td_out.0 += 1;
                td_out.1 += staleness;
                td_out.2 = td_out.2.max(staleness);
            }
            if let Some(c) = fifo.pop() {
                let staleness = t.saturating_since_dur(c.timestamp);
                ff_out.0 += 1;
                ff_out.1 += staleness;
                ff_out.2 = ff_out.2.max(staleness);
            }
            next_client = t + client_period;
        }
    }

    let td = BufferOutcome {
        displayed: td_out.0,
        mean_staleness: if td_out.0 == 0 {
            0.0
        } else {
            td_out.1 / td_out.0 as f64
        },
        max_staleness: td_out.2,
        discarded: tdb.stats().discarded,
    };
    let ff = BufferOutcome {
        displayed: ff_out.0,
        mean_staleness: if ff_out.0 == 0 {
            0.0
        } else {
            ff_out.1 / ff_out.0 as f64
        },
        max_staleness: ff_out.2,
        discarded: fifo.drops_new(),
    };

    let mut kt = KvTable::new(
        "buffer-ablation",
        &format!("§2.4 buffer designs: 30 fps fill, {client_fps:.0} fps client"),
    );
    for (label, o) in [("time-driven", &td), ("FIFO", &ff)] {
        kt.row(
            &format!("{label} staleness"),
            format!("mean {:.3} / max {:.3}", o.mean_staleness, o.max_staleness),
            "s",
        );
        kt.row(
            &format!("{label} displayed"),
            format!("{}", o.displayed),
            "frames",
        );
        kt.row(
            &format!("{label} discarded"),
            format!("{}", o.discarded),
            if label == "FIFO" {
                "NEW frames dropped"
            } else {
                "obsolete frames aged out"
            },
        );
    }
    (kt, td, ff)
}

/// Helper: staleness as f64 seconds (media query − chunk timestamp).
trait StalenessExt {
    fn saturating_since_dur(&self, earlier: Duration) -> f64;
}

impl StalenessExt for Duration {
    fn saturating_since_dur(&self, earlier: Duration) -> f64 {
        self.saturating_sub(earlier).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_goes_stale_time_driven_stays_current() {
        let (_t, td, ff) = run(20.0, 10.0, 0xB0F);
        // Time-driven: the client always sees the frame containing its
        // media time (staleness < one frame duration).
        assert!(td.max_staleness < 0.034, "{td:?}");
        assert!(td.displayed > 150, "{td:?}");
        // Obsolete frames age out — that is the design doing its job.
        assert!(td.discarded > 100, "{td:?}");

        // FIFO: old frames pile up, new ones get dropped, and what the
        // client sees drifts seconds behind.
        assert!(ff.discarded > 100, "FIFO must drop new data: {ff:?}");
        assert!(
            ff.max_staleness > 10.0 * td.max_staleness.max(0.001),
            "FIFO staleness {ff:?} vs TDB {td:?}"
        );
        assert!(ff.mean_staleness > 0.2, "{ff:?}");
    }

    #[test]
    fn equal_rates_make_both_designs_equivalent() {
        let (_t, td, ff) = run(10.0, 30.0, 0xB1F);
        // Consuming at the fill rate: both stay current.
        assert!(td.max_staleness < 0.034, "{td:?}");
        assert!(ff.max_staleness < 0.6, "{ff:?}");
        assert_eq!(ff.discarded, 0, "no overflow at matched rates: {ff:?}");
    }
}
