//! Disk-scheduling ablation: why the paper's driver sorts with C-SCAN.
//!
//! The same random-request workload is replayed under FCFS, SSTF, SCAN
//! and C-SCAN, measuring mean seek time per operation, aggregate
//! throughput, and — the real-time argument — the *worst-case* request
//! latency. SSTF wins on mean seek but starves edge requests; C-SCAN
//! bounds the wait, which is what an admission test can reason about.

use cras_disk::{DiskDevice, DiskRequest, QueuePolicy};
use cras_sim::{Instant, Rng};

use crate::result::KvTable;

/// Results for one policy.
#[derive(Clone, Copy, Debug)]
pub struct PolicyOutcome {
    /// The policy.
    pub policy: QueuePolicy,
    /// Mean seek time per operation (seconds).
    pub mean_seek: f64,
    /// Aggregate throughput (bytes/second).
    pub throughput: f64,
    /// Worst request latency (submission → completion, seconds).
    pub worst_latency: f64,
    /// Mean request latency (seconds).
    pub mean_latency: f64,
}

/// Replays `ops` random 64 KB reads, keeping `queue_depth` outstanding.
pub fn run_policy(policy: QueuePolicy, ops: usize, queue_depth: usize, seed: u64) -> PolicyOutcome {
    let mut dev: DiskDevice<usize> = DiskDevice::st32550n();
    dev.set_queue_policy(policy);
    let mut rng = Rng::new(seed);
    let total_blocks = dev.geometry().total_blocks();
    let blocks: Vec<u64> = (0..ops).map(|_| rng.below(total_blocks - 128)).collect();

    let mut now = Instant::ZERO;
    let mut next = 0usize;
    let mut pending_event: Option<Instant> = None;
    let mut latencies: Vec<f64> = Vec::with_capacity(ops);
    let mut seek_sum = 0.0;
    let mut completed = 0usize;
    // Prime the queue.
    while next < ops.min(queue_depth) {
        if let Some(t) = dev.submit(now, DiskRequest::read(blocks[next], 128, next)) {
            pending_event = Some(t);
        }
        next += 1;
    }
    while let Some(t) = pending_event {
        now = t;
        let (done, more) = dev.complete(now);
        pending_event = more;
        latencies.push(done.latency().as_secs_f64());
        seek_sum += done.breakdown.seek.as_secs_f64();
        completed += 1;
        if next < ops {
            // Top the queue back up.
            if let Some(t2) = dev.submit(now, DiskRequest::read(blocks[next], 128, next)) {
                debug_assert!(pending_event.is_none());
                pending_event = Some(t2);
            }
            next += 1;
        }
    }
    assert_eq!(completed, ops, "lost requests under {policy:?}");
    let secs = now.since(Instant::ZERO).as_secs_f64();
    PolicyOutcome {
        policy,
        mean_seek: seek_sum / ops as f64,
        throughput: (ops as u64 * 64 * 1024) as f64 / secs,
        worst_latency: latencies.iter().copied().fold(0.0, f64::max),
        mean_latency: latencies.iter().sum::<f64>() / ops as f64,
    }
}

/// Runs the full ablation.
pub fn run(ops: usize, queue_depth: usize, seed: u64) -> (KvTable, Vec<PolicyOutcome>) {
    let outs: Vec<PolicyOutcome> = [
        QueuePolicy::Fcfs,
        QueuePolicy::Sstf,
        QueuePolicy::Scan,
        QueuePolicy::CScan,
    ]
    .iter()
    .map(|&p| run_policy(p, ops, queue_depth, seed))
    .collect();
    let mut t = KvTable::new(
        "disk-sched",
        &format!("Head-scheduling ablation ({ops} random 64 KB reads, depth {queue_depth})"),
    );
    for o in &outs {
        t.row(
            o.policy.label(),
            format!(
                "seek {:.2} ms | thpt {:.2} MB/s | lat mean {:.1} / worst {:.1} ms",
                o.mean_seek * 1e3,
                o.throughput / 1e6,
                o.mean_latency * 1e3,
                o.worst_latency * 1e3
            ),
            "",
        );
    }
    (t, outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_policies_beat_fcfs_on_seek() {
        let (_t, outs) = run(400, 16, 0xD15C);
        let get = |p: QueuePolicy| outs.iter().find(|o| o.policy == p).copied().unwrap();
        let fcfs = get(QueuePolicy::Fcfs);
        for p in [QueuePolicy::Sstf, QueuePolicy::Scan, QueuePolicy::CScan] {
            let o = get(p);
            assert!(
                o.mean_seek < 0.8 * fcfs.mean_seek,
                "{p:?} seek {} vs FCFS {}",
                o.mean_seek,
                fcfs.mean_seek
            );
            assert!(o.throughput > fcfs.throughput);
        }
    }

    #[test]
    fn sstf_has_best_seek_but_long_tail() {
        let (_t, outs) = run(400, 16, 0xD15C);
        let get = |p: QueuePolicy| outs.iter().find(|o| o.policy == p).copied().unwrap();
        let sstf = get(QueuePolicy::Sstf);
        let cscan = get(QueuePolicy::CScan);
        // SSTF minimizes mean seek...
        assert!(sstf.mean_seek <= cscan.mean_seek * 1.05);
        // ...but its worst-case latency is no better than C-SCAN's (the
        // starvation tail the real-time queue cannot afford).
        assert!(
            sstf.worst_latency >= 0.9 * cscan.worst_latency,
            "sstf {} vs cscan {}",
            sstf.worst_latency,
            cscan.worst_latency
        );
    }

    #[test]
    fn conservation_across_policies() {
        // run_policy itself asserts completion counts; just exercise a
        // second seed/depth combination.
        let (_t, outs) = run(150, 4, 7);
        assert_eq!(outs.len(), 4);
        for o in outs {
            assert!(o.throughput > 0.0);
        }
    }
}
