//! Figure 10 — effect of real-time scheduling: per-frame delay of one
//! 1.5 Mbps stream while CPU-bound tasks run, under fixed-priority vs
//! round-robin scheduling.
//!
//! "Under round-robin scheduling, delay jitters of retrieved data are
//! much larger than under fixed priority scheduling. This result shows
//! that real-time scheduling is very important to retrieve continuous
//! media data at a constant rate."

use cras_media::StreamProfile;
use cras_sim::Duration;
use cras_sys::SchedMode;

use crate::result::Figure;
use crate::runner::{run_scenario, Scenario, Storage};

/// Experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct Fig10Config {
    /// Trace length.
    pub trace: Duration,
    /// CPU hog threads.
    pub hogs: u32,
    /// Round-robin quantum.
    pub quantum: Duration,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            trace: Duration::from_secs(60),
            hogs: 2,
            quantum: Duration::from_millis(100),
            seed: 10_1996,
        }
    }
}

/// Runs both policies; returns the figure plus `(fp, rr)` delay
/// summaries as `(mean, max)` seconds.
pub fn run(cfg: &Fig10Config) -> (Figure, (f64, f64), (f64, f64)) {
    let mut fig = Figure::new(
        "fig10",
        "Per-frame delay with CPU-bound background tasks",
        "time (s)",
        "delay (s)",
    );
    let mut summaries = Vec::new();
    for (name, sched) in [
        ("FixedPriority", SchedMode::FixedPriority),
        (
            "RoundRobin",
            SchedMode::RoundRobin {
                quantum: cfg.quantum,
            },
        ),
    ] {
        let sc = Scenario {
            storage: Storage::Cras,
            streams: 1,
            profile: StreamProfile::mpeg1(),
            bg_readers: 0,
            bg_pause: Duration::ZERO,
            hogs: cfg.hogs,
            sched,
            measure: cfg.trace,
            seed: cfg.seed,
            enforce_admission: true,
        };
        let out = run_scenario(sc);
        let trace = &out.delay_traces[0];
        let step = (trace.len() / 200).max(1);
        for (i, &(t, d)) in trace.iter().enumerate() {
            if i % step == 0 {
                fig.series_mut(name).push(t, d);
            }
        }
        summaries.push(out.delays[0]);
    }
    (fig, summaries[0], summaries[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_jitter_dwarfs_fixed_priority() {
        let cfg = Fig10Config {
            trace: Duration::from_secs(15),
            ..Fig10Config::default()
        };
        let (_fig, fp, rr) = run(&cfg);
        assert!(
            rr.1 > 10.0 * fp.1.max(0.001),
            "RR max {} vs FP max {}",
            rr.1,
            fp.1
        );
        // FP keeps the stream in the millisecond regime.
        assert!(fp.1 < 0.05, "FP max {}", fp.1);
        // RR delays are in the quantum regime (tens to hundreds of ms).
        assert!(rr.1 > 0.05, "RR max {}", rr.1);
    }
}
