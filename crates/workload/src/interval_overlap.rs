//! Cross-volume interval overlap experiment: does the pipelined issue
//! path make measured interval time track the *slowest spindle* instead
//! of the sum over spindles?
//!
//! The per-volume admission test bounds each interval by
//! `max(per-volume calculated I/O time)` — a bound that is only honest
//! if every spindle drains its batch concurrently. This experiment runs
//! the same striped multi-volume workload under both
//! [`IssueMode::Pipelined`] (each volume's C-SCAN batch issued at tick
//! time, one chain in flight per spindle) and the
//! [`IssueMode::SerialVolumes`] baseline (one volume's batch at a time),
//! and compares each interval's wall-clock span against the *measured*
//! per-volume service times: pipelined spans sit on the slowest
//! spindle, serial spans sit on the sum.

use std::collections::BTreeMap;

use cras_core::PlacementPolicy;
use cras_media::StreamProfile;
use cras_sim::{Duration, Instant};
use cras_sys::{IssueMode, SysConfig, System};

use crate::result::{Figure, KvTable};

/// First interval index included in the measurements: the initial
/// prefetch intervals issue double batches and would skew the means.
const WARMUP_INTERVALS: u64 = 4;

/// Outcome of one run (one stream count, one issue mode).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverlapOutcome {
    /// Volumes in the striped array.
    pub volumes: usize,
    /// Streams requested.
    pub requested: usize,
    /// Streams the admission test accepted.
    pub admitted: usize,
    /// Issue mode of this run.
    pub mode: IssueMode,
    /// Frames dropped by the admitted players (must stay 0).
    pub dropped: u64,
    /// Deadline warnings from the server (must stay 0).
    pub overruns: u64,
    /// Multi-volume intervals measured (post-warmup, fully completed).
    pub intervals: usize,
    /// Mean wall-clock span of those intervals, seconds.
    pub mean_span: f64,
    /// Mean of span over the *measured* busy time of the interval's
    /// slowest spindle. Pipelined issue sits near 1; serial issue grows
    /// toward the number of loaded volumes.
    pub span_over_max: f64,
    /// Mean of span over the summed service time of all the interval's
    /// reads. Serial issue sits near 1 (the span *is* the sum);
    /// pipelined issue drops toward `1/volumes`.
    pub span_over_sum: f64,
    /// Mean of span over `max(per-volume calculated I/O time)` — the
    /// admission bound. Must stay at or below 1 for pipelined issue.
    pub span_over_calc: f64,
    /// Mean cross-volume overlap factor (summed service time over the
    /// span): 1 = one spindle at a time, `volumes` = all busy throughout.
    pub overlap: f64,
}

/// Runs one striped workload: `requested` streams over `volumes`
/// volumes, issued under `mode`, measured for `measure`.
pub fn run_one(
    requested: usize,
    volumes: usize,
    mode: IssueMode,
    measure: Duration,
    seed: u64,
) -> OverlapOutcome {
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    cfg.server.volumes = volumes;
    // Fine stripes: an interval's worth of MPEG1 (~90 KB) spans volumes
    // every interval. Identical movies played in lockstep over coarse
    // stripes would park every stream on the same spindle at once and
    // leave nothing to overlap.
    cfg.server.placement = PlacementPolicy::Striped {
        stripe_bytes: 64 * 1024,
    };
    cfg.server.buffer_budget = 64 << 20;
    let mut sys = System::new(cfg);
    // The serial baseline is an experiment-only knob, deliberately not
    // part of `SysConfig`.
    sys.set_issue_mode(mode);
    let movies: Vec<_> = (0..requested)
        .map(|i| {
            sys.record_movie(
                &format!("ov{i}.mov"),
                StreamProfile::mpeg1(),
                measure.as_secs_f64() + 8.0,
            )
        })
        .collect();
    let mut players = Vec::new();
    for m in &movies {
        match sys.add_cras_player(m, 1) {
            Ok(c) => players.push(c),
            Err(_) => break,
        }
    }
    let admitted = players.len();
    let mut start = Instant::ZERO;
    for &p in &players {
        start = sys.start_playback(p).max(start);
        // De-lockstep the identical movies: staggered starts spread
        // each interval's reads over the whole array instead of
        // marching every stream along the same stripe front.
        sys.run_for(Duration::from_millis(700));
    }
    sys.run_until(start + measure);
    let dropped = players
        .iter()
        .map(|c| sys.players[&c.0].stats.frames_dropped)
        .sum();
    // Measure from the first interval where every stream is in steady
    // state: past the last start and the prefetch ramp behind it.
    let started_intervals =
        start.since(Instant::ZERO).as_nanos() / cfg.server.interval.as_nanos().max(1);
    let min_index = started_intervals + WARMUP_INTERVALS;

    // Measured per-volume busy time of each interval, from the
    // per-(interval, volume) records.
    let mut per_vol: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for r in sys.metrics.intervals() {
        if let Some(actual) = r.actual() {
            per_vol.entry(r.index).or_default().push(actual);
        }
    }
    let mut n = 0usize;
    let (mut span_sum, mut over_max, mut over_sum, mut over_calc, mut overlap) =
        (0.0, 0.0, 0.0, 0.0, 0.0);
    for w in sys.metrics.interval_walls() {
        // Steady-state, fully completed, genuinely multi-volume
        // intervals only: single-volume intervals are identical under
        // both modes and would dilute the contrast.
        if w.index < min_index || w.volumes < 2 {
            continue;
        }
        let (Some(span), Some(ov)) = (w.span(), w.overlap()) else {
            continue;
        };
        let vols = per_vol.get(&w.index).map(Vec::as_slice).unwrap_or(&[]);
        if vols.len() != w.volumes {
            continue; // A per-volume record never completed.
        }
        let measured_max = vols.iter().copied().fold(0.0f64, f64::max);
        if measured_max <= 0.0 || w.service_sum <= 0.0 || w.calc_max <= 0.0 {
            continue;
        }
        n += 1;
        span_sum += span;
        over_max += span / measured_max;
        over_sum += span / w.service_sum;
        over_calc += span / w.calc_max;
        overlap += ov;
    }
    let m = (n as f64).max(1.0);
    OverlapOutcome {
        volumes,
        requested,
        admitted,
        mode,
        dropped,
        overruns: sys.metrics.overruns,
        intervals: n,
        mean_span: span_sum / m,
        span_over_max: over_max / m,
        span_over_sum: over_sum / m,
        span_over_calc: over_calc / m,
        overlap: overlap / m,
    }
}

fn mode_label(mode: IssueMode) -> &'static str {
    match mode {
        IssueMode::Pipelined => "pipelined",
        IssueMode::SerialVolumes => "serial",
    }
}

/// Runs each stream count under both issue modes over a `volumes`-wide
/// striped array.
pub fn sweep(
    stream_counts: &[usize],
    volumes: usize,
    measure: Duration,
    seed: u64,
) -> (KvTable, Figure, Vec<OverlapOutcome>) {
    assert!(volumes >= 2, "overlap needs at least two volumes");
    let mut out = Vec::new();
    for &requested in stream_counts {
        for mode in [IssueMode::Pipelined, IssueMode::SerialVolumes] {
            out.push(run_one(requested, volumes, mode, measure, seed));
        }
    }
    let mut t = KvTable::new(
        "interval_overlap",
        &format!("Cross-volume interval overlap ({volumes} striped volumes)"),
    );
    for o in &out {
        t.row(
            &format!("n={} {}", o.requested, mode_label(o.mode)),
            format!(
                "admitted={} drops={} warnings={} intervals={} span={:.1}ms \
                 span/max={:.2} span/sum={:.2} span/calc={:.2} overlap={:.2}",
                o.admitted,
                o.dropped,
                o.overruns,
                o.intervals,
                o.mean_span * 1e3,
                o.span_over_max,
                o.span_over_sum,
                o.span_over_calc,
                o.overlap
            ),
            "",
        );
    }
    let mut f = Figure::new(
        "interval_overlap",
        "Interval span over slowest-spindle busy time",
        "admitted streams",
        "span / max(per-volume measured)",
    );
    for o in &out {
        f.series_mut(mode_label(o.mode))
            .push(o.admitted as f64, o.span_over_max);
    }
    (t, f, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_core::ServerConfig;
    use cras_sim::Rng;
    use cras_sys::MoviePlacement;

    #[test]
    fn pipelined_tracks_the_slowest_spindle_serial_tracks_the_sum() {
        let (_t, _f, outs) = sweep(&[8], 4, Duration::from_secs(12), 0x0E);
        let [pipe, serial] = outs.as_slice() else {
            panic!("expected two outcomes, got {outs:?}");
        };
        assert_eq!(pipe.mode, IssueMode::Pipelined);
        assert_eq!(serial.mode, IssueMode::SerialVolumes);
        for o in [pipe, serial] {
            assert_eq!(o.admitted, o.requested, "admission rejected: {o:?}");
            assert_eq!(o.dropped, 0, "dropped frames: {o:?}");
            assert_eq!(o.overruns, 0, "deadline warnings: {o:?}");
            assert!(o.intervals >= 10, "too few measured intervals: {o:?}");
        }
        // The issue mode must not leak into admission.
        assert_eq!(pipe.admitted, serial.admitted);
        // Pipelined: the interval ends with the slowest spindle (within
        // the acceptance margin), well under the admission bound.
        assert!(
            pipe.span_over_max <= 1.15,
            "pipelined not overlapped: {pipe:?}"
        );
        assert!(
            pipe.span_over_calc <= 1.0,
            "admission bound broken: {pipe:?}"
        );
        assert!(pipe.overlap > 1.5, "spindles not concurrent: {pipe:?}");
        // Serial baseline: the interval is the sum of the spindles.
        assert!(
            serial.span_over_sum >= 0.95,
            "serial not near-sum: {serial:?}"
        );
        assert!(serial.overlap <= 1.05, "serial overlapped: {serial:?}");
        assert!(
            serial.span_over_max >= 2.0,
            "baseline contrast too weak: {serial:?}"
        );
        assert!(
            serial.mean_span > 2.0 * pipe.mean_span,
            "pipelined span {} vs serial {}",
            pipe.mean_span,
            serial.mean_span
        );
    }

    #[test]
    fn admission_bound_holds_under_overlap() {
        // Property: with pipelined issue, no completed interval's wall
        // span exceeds max(per-volume calculated) plus modeled overhead
        // — across random multi-volume workloads, including a failed
        // volume mid-run and cache-served followers.
        let bound_ok = |sys: &System, label: &str| {
            for w in sys.metrics.interval_walls() {
                let Some(span) = w.span() else { continue };
                // The initial prefetch intervals batch two intervals of
                // data by design (start-delay buffering); the per-
                // interval bound applies from steady state on.
                if w.index < WARMUP_INTERVALS || w.calc_max <= 0.0 {
                    continue;
                }
                // Margin: per-command overhead under-modeled by the
                // admission test plus the fast-error latency of reads
                // caught on a dying volume.
                assert!(
                    span <= w.calc_max * 1.05 + 0.01,
                    "{label}: interval {} span {span} exceeds calc_max {}",
                    w.index,
                    w.calc_max
                );
            }
        };
        let mut rng = Rng::new(0x0B5D);
        for case in 0..4u64 {
            let volumes = 2 + (rng.next_u64() % 3) as usize;
            let streams = 2 + (rng.next_u64() % 7) as usize;
            let mut cfg = SysConfig::default();
            cfg.seed = 0xA110 + case;
            cfg.server.volumes = volumes;
            cfg.server.placement = PlacementPolicy::Striped {
                stripe_bytes: 64 * 1024,
            };
            cfg.server.buffer_budget = 64 << 20;
            let mut sys = System::new(cfg);
            let movies: Vec<_> = (0..streams)
                .map(|i| sys.record_movie(&format!("p{i}"), StreamProfile::mpeg1(), 14.0))
                .collect();
            let mut players = Vec::new();
            for m in &movies {
                match sys.add_cras_player(m, 1) {
                    Ok(c) => players.push(c),
                    Err(_) => break,
                }
            }
            let mut start = Instant::ZERO;
            for &p in &players {
                start = sys.start_playback(p).max(start);
            }
            sys.run_until(start + Duration::from_secs(10));
            bound_ok(
                &sys,
                &format!("striped case {case} v={volumes} s={streams}"),
            );
        }

        // One failed volume: mirrored placement, primary dies mid-run,
        // reads remap to the surviving replica (which admission charged
        // in full), so the bound must survive the failover.
        let mut cfg = SysConfig::default();
        cfg.seed = 0xFA11;
        cfg.server.volumes = 4;
        cfg.server.placement = PlacementPolicy::Mirrored;
        cfg.server.buffer_budget = 64 << 20;
        let mut sys = System::new(cfg);
        let movies: Vec<_> = (0..4)
            .map(|i| sys.record_movie(&format!("f{i}"), StreamProfile::mpeg1(), 16.0))
            .collect();
        let players: Vec<_> = movies
            .iter()
            .map(|m| sys.add_cras_player(m, 1).unwrap())
            .collect();
        let mut start = Instant::ZERO;
        for &p in &players {
            start = sys.start_playback(p).max(start);
        }
        sys.run_until(start + Duration::from_secs(4));
        let victim = match sys.placement("f0") {
            Some(MoviePlacement::Mirrored { primary, .. }) => *primary,
            other => panic!("movie 0 is not mirrored: {other:?}"),
        };
        sys.fail_volume(victim);
        sys.run_until(start + Duration::from_secs(12));
        assert!(sys.metrics.degraded_intervals > 0, "mirror never served");
        bound_ok(&sys, "failed volume");

        // Cache-served followers: a trailing stream fed from the
        // interval cache issues no disk reads, so it must not widen any
        // wall span.
        let mut cfg = SysConfig::default();
        cfg.seed = 0xCAC0;
        cfg.server.volumes = 2;
        cfg.server.placement = PlacementPolicy::Striped {
            stripe_bytes: 256 * 1024,
        };
        cfg.server.buffer_budget = 64 << 20;
        cfg.server.cache_budget = 32 << 20;
        cfg.server.max_cache_gap = Duration::from_secs(10);
        let mut sys = System::new(cfg);
        let movie = sys.record_movie("shared", StreamProfile::mpeg1(), 16.0);
        let lead = sys.add_cras_player(&movie, 1).unwrap();
        sys.start_playback(lead);
        sys.run_for(Duration::from_secs(3));
        let follow = sys.add_cras_player(&movie, 1).unwrap();
        sys.start_playback(follow);
        sys.run_for(Duration::from_secs(10));
        assert!(
            sys.metrics.cache_served_stream_intervals > 0,
            "follower never served from cache"
        );
        bound_ok(&sys, "cache follower");
    }

    #[test]
    fn zero_cache_budget_admission_is_mode_independent() {
        // Acceptance guard: at cache budget 0 (the default
        // [`ServerConfig`]), switching issue modes changes nothing about
        // who gets admitted.
        assert_eq!(ServerConfig::default().cache_budget, 0);
        let admitted = |mode: IssueMode| {
            let mut cfg = SysConfig::default();
            cfg.seed = 0xAD01;
            cfg.server.volumes = 4;
            cfg.server.placement = PlacementPolicy::Striped {
                stripe_bytes: 256 * 1024,
            };
            cfg.server.buffer_budget = 64 << 20;
            let mut sys = System::new(cfg);
            sys.set_issue_mode(mode);
            let movies: Vec<_> = (0..40)
                .map(|i| sys.record_movie(&format!("a{i}"), StreamProfile::mpeg1(), 6.0))
                .collect();
            movies
                .iter()
                .filter(|m| sys.add_cras_player(m, 1).is_ok())
                .count()
        };
        let p = admitted(IssueMode::Pipelined);
        let s = admitted(IssueMode::SerialVolumes);
        assert!(p > 0);
        assert_eq!(p, s, "issue mode leaked into admission");
    }

    #[test]
    fn overlap_sweep_is_deterministic() {
        let run = || sweep(&[4], 2, Duration::from_secs(8), 0x0E0E).2;
        assert_eq!(run(), run(), "same seed must reproduce bit-for-bit");
    }
}
