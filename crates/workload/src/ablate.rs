//! Admission-model ablation — how much of the paper's measured pessimism
//! (Figures 8/9) is the per-stream overhead simplification?
//!
//! The paper charges one command and one rotational delay per *stream*
//! per interval; the real scheduler issues one command per 256 KB read.
//! [`cras_core::AdmissionModel::MultiCommand`] charges per read instead.
//! This ablation compares calculated I/O times and admitted capacities
//! under both models.

use cras_core::{Admission, AdmissionModel, StreamParams};
use cras_disk::calibrate::DiskParams;

use crate::result::KvTable;

/// One comparison row.
#[derive(Clone, Copy, Debug)]
pub struct AblatePoint {
    /// Interval, seconds.
    pub interval: f64,
    /// Stream rate, bytes/second.
    pub rate: f64,
    /// Calculated I/O time per interval, paper model (s).
    pub calc_paper: f64,
    /// Calculated I/O time per interval, multi-command model (s).
    pub calc_multi: f64,
    /// Capacity (streams) under the paper model.
    pub cap_paper: usize,
    /// Capacity under the multi-command model.
    pub cap_multi: usize,
}

/// Runs the comparison for the paper's two stream classes at several
/// intervals.
pub fn run(params: DiskParams) -> (KvTable, Vec<AblatePoint>) {
    let paper = Admission::new(params, AdmissionModel::Paper);
    let multi = Admission::new(params, AdmissionModel::MultiCommand);
    let budget = u64::MAX / 4;
    let mut points = Vec::new();
    let mut t = KvTable::new(
        "ablate",
        "Admission-model ablation (paper vs per-256KB-read)",
    );
    for (label, proto) in [
        ("MPEG1", StreamParams::new(187_500.0, 6_250.0)),
        ("MPEG2", StreamParams::new(750_000.0, 25_000.0)),
    ] {
        for interval in [0.5, 1.0, 1.5] {
            let streams = vec![proto; 5];
            let p = AblatePoint {
                interval,
                rate: proto.rate,
                calc_paper: paper.calculated_io_time(interval, &streams),
                calc_multi: multi.calculated_io_time(interval, &streams),
                cap_paper: paper.capacity(interval, proto, budget, 200),
                cap_multi: multi.capacity(interval, proto, budget, 200),
            };
            t.row(
                &format!("{label} T={interval}s calc I/O (5 streams)"),
                format!("{:.1} / {:.1}", p.calc_paper * 1e3, p.calc_multi * 1e3),
                "ms (paper/multi)",
            );
            t.row(
                &format!("{label} T={interval}s capacity"),
                format!("{} / {}", p.cap_paper, p.cap_multi),
                "streams (paper/multi)",
            );
            points.push(p);
        }
    }
    (t, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_command_model_never_admits_more() {
        let (_t, points) = run(DiskParams::paper_table4());
        for p in &points {
            assert!(p.cap_multi <= p.cap_paper, "{p:?}");
            assert!(p.calc_multi >= p.calc_paper - 1e-12, "{p:?}");
        }
    }

    #[test]
    fn divergence_grows_with_interval_for_high_rate() {
        // At 6 Mbps, A_i grows with T, so the number of 256 KB reads —
        // and the extra charged overhead — grows too.
        let (_t, points) = run(DiskParams::paper_table4());
        let mpeg2: Vec<&AblatePoint> = points.iter().filter(|p| p.rate > 500_000.0).collect();
        let gap = |p: &AblatePoint| p.calc_multi - p.calc_paper;
        assert!(gap(mpeg2[2]) > gap(mpeg2[0]), "{mpeg2:?}");
    }

    #[test]
    fn low_rate_short_interval_models_agree() {
        // One MPEG1 interval fits in a single 256 KB read: identical.
        let (_t, points) = run(DiskParams::paper_table4());
        let p = &points[0]; // MPEG1, T = 0.5.
        assert!((p.calc_multi - p.calc_paper).abs() < 1e-9, "{p:?}");
    }
}
