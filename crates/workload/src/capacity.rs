//! The §3.1 capacity claim and Table 1/3 parameter report.
//!
//! "If a longer initial delay is allowed, CRAS can support more streams
//! or higher data rates. For example, with 3 seconds initial delay, it
//! can support more than 25 MPEG1 streams whose total throughput is
//! 4.6MB/s (70% of disk bandwidth)."
//!
//! Initial delay is two intervals (double buffering), so a 3 s delay is a
//! 1.5 s interval. The sweep reports, per interval time, the number of
//! admitted streams and the bandwidth fraction they represent, for both
//! MPEG-1 and MPEG-2 rates.

use cras_core::{Admission, AdmissionModel, CrasServer, ServerConfig, StreamParams};
use cras_disk::calibrate::DiskParams;

use crate::result::{Figure, KvTable};

/// One capacity sweep point.
#[derive(Clone, Copy, Debug)]
pub struct CapacityPoint {
    /// Interval time, seconds.
    pub interval: f64,
    /// Initial delay (2 × interval), seconds.
    pub initial_delay: f64,
    /// Admitted MPEG-1 streams.
    pub mpeg1_streams: usize,
    /// Their fraction of disk bandwidth.
    pub mpeg1_fraction: f64,
    /// Admitted MPEG-2 streams.
    pub mpeg2_streams: usize,
    /// Their fraction of disk bandwidth.
    pub mpeg2_fraction: f64,
}

/// Sweeps interval times, reporting admitted capacity.
pub fn sweep(params: DiskParams, intervals: &[f64]) -> Vec<CapacityPoint> {
    let adm = Admission::new(params, AdmissionModel::Paper);
    let budget = u64::MAX / 4;
    let mpeg1 = StreamParams::new(187_500.0, 6_250.0);
    let mpeg2 = StreamParams::new(750_000.0, 25_000.0);
    intervals
        .iter()
        .map(|&t| {
            let n1 = adm.capacity(t, mpeg1, budget, 200);
            let n2 = adm.capacity(t, mpeg2, budget, 200);
            CapacityPoint {
                interval: t,
                initial_delay: 2.0 * t,
                mpeg1_streams: n1,
                mpeg1_fraction: n1 as f64 * mpeg1.rate / params.transfer_rate,
                mpeg2_streams: n2,
                mpeg2_fraction: n2 as f64 * mpeg2.rate / params.transfer_rate,
            }
        })
        .collect()
}

/// The capacity figure: streams (and bandwidth fraction) vs initial delay.
pub fn figure(params: DiskParams) -> Figure {
    let intervals = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
    let points = sweep(params, &intervals);
    let mut fig = Figure::new(
        "capacity",
        "Admitted streams vs initial delay (§3.1)",
        "initial delay (s)",
        "streams / fraction",
    );
    for p in &points {
        fig.series_mut("MPEG1 streams")
            .push(p.initial_delay, p.mpeg1_streams as f64);
        fig.series_mut("MPEG1 bandwidth fraction")
            .push(p.initial_delay, p.mpeg1_fraction);
        fig.series_mut("MPEG2 streams")
            .push(p.initial_delay, p.mpeg2_streams as f64);
        fig.series_mut("MPEG2 bandwidth fraction")
            .push(p.initial_delay, p.mpeg2_fraction);
    }
    fig
}

/// Table 1/3 — the admission-test parameters with their resolved values,
/// plus the §2.1 server-memory accounting.
pub fn table3(params: DiskParams) -> KvTable {
    let cfg = ServerConfig::default();
    let adm = Admission::new(params, AdmissionModel::Paper);
    let t = cfg.interval.as_secs_f64();
    let mpeg1 = StreamParams::new(187_500.0, 6_250.0);
    let streams = vec![mpeg1; 5];

    let mut kt = KvTable::new(
        "table3",
        "Admission-test parameters (5 MPEG1 streams, T = 0.5 s)",
    );
    kt.row("N", "5".into(), "streams");
    kt.row("T (interval)", format!("{t:.3}"), "s");
    kt.row("D", format!("{:.2}", params.transfer_rate / 1e6), "MB/s");
    kt.row("R_total", format!("{:.0}", 5.0 * mpeg1.rate), "B/s");
    kt.row("C_total", format!("{:.0}", 5.0 * mpeg1.chunk), "B");
    kt.row("O_other", format!("{:.2}", adm.o_other() * 1e3), "ms (C.9)");
    kt.row(
        "O_seek",
        format!("{:.2}", adm.o_seek(&streams) * 1e3),
        "ms (C.12)",
    );
    kt.row(
        "O_rot",
        format!("{:.2}", adm.o_rot(t, &streams) * 1e3),
        "ms (C.13)",
    );
    kt.row(
        "O_cmd",
        format!("{:.2}", adm.o_cmd(t, &streams) * 1e3),
        "ms (C.10)",
    );
    kt.row(
        "O_total",
        format!("{:.2}", adm.o_total(t, &streams) * 1e3),
        "ms (C.15)",
    );
    kt.row(
        "calculated I/O time",
        format!("{:.2}", adm.calculated_io_time(t, &streams) * 1e3),
        "ms (must be <= T)",
    );
    kt.row(
        "B_total",
        format!("{}", adm.buffer_total(t, &streams)),
        "B (formula 2)",
    );

    // §2.1 memory accounting: 250 KB + total buffer space.
    let mut srv = CrasServer::new(params, cfg);
    let mut rng = cras_sim::Rng::new(1);
    for i in 0..5 {
        let table = cras_media::generate_chunks(&cras_media::StreamProfile::mpeg1(), 5.0, &mut rng);
        let nblocks = table.total_bytes().div_ceil(512) as u32;
        let extents = vec![cras_ufs::Extent {
            file_offset: 0,
            disk_block: 100_000 + i * 100_000,
            nblocks,
        }];
        srv.open(&format!("m{i}"), table, extents)
            .expect("5 MPEG1 streams fit");
    }
    kt.row(
        "server memory (5 streams)",
        format!("{}", srv.memory_bytes()),
        "B (= 250 KB + buffers, §2.1)",
    );
    kt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_second_delay_supports_over_25_mpeg1_streams() {
        let points = sweep(DiskParams::paper_table4(), &[1.5]);
        let p = points[0];
        assert!((p.initial_delay - 3.0).abs() < 1e-12);
        assert!(
            p.mpeg1_streams >= 24,
            "streams at 3 s delay = {}",
            p.mpeg1_streams
        );
        assert!(p.mpeg1_fraction > 0.66, "fraction = {}", p.mpeg1_fraction);
    }

    #[test]
    fn capacity_grows_with_delay() {
        let points = sweep(DiskParams::paper_table4(), &[0.25, 0.5, 1.0, 2.0]);
        for w in points.windows(2) {
            assert!(w[1].mpeg1_streams >= w[0].mpeg1_streams);
            assert!(w[1].mpeg2_streams >= w[0].mpeg2_streams);
        }
    }

    #[test]
    fn table3_reports_memory_claim() {
        let kt = table3(DiskParams::paper_table4());
        let mem_row = kt
            .rows
            .iter()
            .find(|r| r.0.starts_with("server memory"))
            .unwrap();
        let mem: u64 = mem_row.1.parse().unwrap();
        // 250 KB + 5 × ~200 KB = ~1.25 MB.
        assert!((1_200_000..1_350_000).contains(&mem), "memory = {mem}");
    }
}
