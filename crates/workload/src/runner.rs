//! Shared experiment plumbing: building a populated system and running
//! one playback scenario to completion.

use cras_media::{Movie, StreamProfile};
use cras_sim::{Duration, Instant};
use cras_sys::{ClientId, SchedMode, SysConfig, System};

/// Which storage system serves the players.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Storage {
    /// CRAS constant-rate retrieval.
    Cras,
    /// The Unix file system baseline.
    Ufs,
}

impl Storage {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Storage::Cras => "CRAS",
            Storage::Ufs => "UFS",
        }
    }
}

/// One playback scenario.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Storage system under test.
    pub storage: Storage,
    /// Number of concurrent streams.
    pub streams: usize,
    /// Stream profile.
    pub profile: StreamProfile,
    /// Background `cat` readers.
    pub bg_readers: usize,
    /// Pause between background reads (zero = flat out).
    pub bg_pause: Duration,
    /// CPU hogs.
    pub hogs: u32,
    /// Scheduling mode.
    pub sched: SchedMode,
    /// Measurement window after playback start.
    pub measure: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Enforce the admission test (off for achieved-throughput sweeps).
    pub enforce_admission: bool,
}

impl Scenario {
    /// A single-stream CRAS baseline scenario.
    pub fn simple(storage: Storage) -> Scenario {
        Scenario {
            storage,
            streams: 1,
            profile: StreamProfile::mpeg1(),
            bg_readers: 0,
            bg_pause: Duration::ZERO,
            hogs: 0,
            sched: SchedMode::FixedPriority,
            measure: Duration::from_secs(20),
            seed: 42,
            enforce_admission: false,
        }
    }
}

/// Outcome of a scenario run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Aggregate stream throughput, bytes/second (disk-delivered for
    /// CRAS, client-consumed for UFS — both count stream data moved on
    /// behalf of the players).
    pub throughput: f64,
    /// Per-player `(mean, max)` frame delay in seconds.
    pub delays: Vec<(f64, f64)>,
    /// 99th-percentile frame delay across all players, seconds.
    pub delay_p99: f64,
    /// Per-player frame-delay traces `(t_secs_from_playback, delay_secs)`.
    pub delay_traces: Vec<Vec<(f64, f64)>>,
    /// Total frames shown / dropped.
    pub frames: (u64, u64),
    /// Admission-accuracy ratios per completed interval (CRAS only).
    pub ratios: Vec<f64>,
    /// Average and max ratio.
    pub ratio_summary: (f64, f64),
    /// Deadline overruns recorded by the server.
    pub overruns: u64,
    /// Background readers' aggregate achieved rate, bytes/second.
    pub bg_rate: f64,
}

/// Builds the system, records movies, wires players and load, runs, and
/// collects the outcome.
pub fn run_scenario(sc: Scenario) -> RunOutcome {
    let mut cfg = SysConfig::default();
    cfg.seed = sc.seed;
    cfg.sched = sc.sched;
    cfg.hogs = sc.hogs;
    cfg.enforce_admission = sc.enforce_admission;
    // Buffer budget ample for any sweep (admission is exercised through
    // the interval-time criterion, like the paper's evaluation).
    cfg.server.buffer_budget = 64 << 20;
    let mut sys = System::new(cfg);

    let movie_secs = sc.measure.as_secs_f64() + 10.0;
    let movies: Vec<Movie> = (0..sc.streams)
        .map(|i| sys.record_movie(&format!("stream{i}.mov"), sc.profile, movie_secs))
        .collect();
    let bg_movies: Vec<Movie> = (0..sc.bg_readers)
        .map(|i| sys.record_movie(&format!("bg{i}.mov"), StreamProfile::mpeg1(), 30.0))
        .collect();

    let players: Vec<ClientId> = movies
        .iter()
        .map(|m| match sc.storage {
            Storage::Cras => sys
                .add_cras_player(m, 1)
                .expect("admission disabled or within capacity"),
            Storage::Ufs => sys.add_ufs_player(m, 1),
        })
        .collect();
    for m in &bg_movies {
        sys.add_bg_reader_paced(m, sc.bg_pause);
    }
    if sc.hogs > 0 {
        sys.start_hogs();
    }
    sys.start_bg();
    let mut playback_start = Instant::ZERO;
    for &p in &players {
        playback_start = sys.start_playback(p).max(playback_start);
    }
    let end = playback_start + sc.measure;
    sys.run_until(end);

    collect(&sys, sc, playback_start, end)
}

fn collect(sys: &System, sc: Scenario, playback_start: Instant, end: Instant) -> RunOutcome {
    let window = end.since(playback_start);
    let throughput = match sc.storage {
        Storage::Cras => sys.metrics.cras_read_bytes as f64 / window.as_secs_f64(),
        Storage::Ufs => {
            sys.players
                .values()
                .map(|p| p.stats.bytes_consumed)
                .sum::<u64>() as f64
                / window.as_secs_f64()
        }
    };
    let delays = sys.players.values().map(|p| p.delay_summary()).collect();
    let mut all_delays = cras_sim::stats::Samples::new();
    for p in sys.players.values() {
        for &(_, d) in p.stats.delays.points() {
            all_delays.add(d);
        }
    }
    let delay_p99 = all_delays.percentile(99.0);
    let delay_traces = sys
        .players
        .values()
        .map(|p| {
            p.stats
                .delays
                .points()
                .iter()
                .map(|&(t, d)| (t.saturating_since(playback_start).as_secs_f64(), d))
                .collect()
        })
        .collect();
    let frames = sys.players.values().fold((0, 0), |acc, p| {
        (acc.0 + p.stats.frames_shown, acc.1 + p.stats.frames_dropped)
    });
    let ratios = sys.metrics.admission_ratios(2);
    let ratio_summary = sys.metrics.ratio_summary(2);
    let bg_rate = sys.bgs.values().map(|b| b.rate(end)).sum();
    RunOutcome {
        throughput,
        delays,
        delay_p99,
        delay_traces,
        frames,
        ratios,
        ratio_summary,
        overruns: sys.metrics.overruns,
        bg_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_cras_scenario_delivers_rate() {
        let mut sc = Scenario::simple(Storage::Cras);
        sc.measure = Duration::from_secs(10);
        let out = run_scenario(sc);
        // One MPEG1 stream: ~187.5 KB/s delivered (block rounding adds a
        // little).
        assert!(
            (150e3..230e3).contains(&out.throughput),
            "throughput {}",
            out.throughput
        );
        assert_eq!(out.frames.1, 0, "no drops");
        assert!(out.overruns == 0);
        // Tail delay stays in the client-cost regime.
        assert!(out.delay_p99 < 0.01, "p99 {}", out.delay_p99);
    }

    #[test]
    fn simple_ufs_scenario_delivers_rate() {
        let mut sc = Scenario::simple(Storage::Ufs);
        sc.measure = Duration::from_secs(10);
        let out = run_scenario(sc);
        assert!(
            (150e3..230e3).contains(&out.throughput),
            "throughput {}",
            out.throughput
        );
    }

    #[test]
    fn bg_load_runs() {
        let mut sc = Scenario::simple(Storage::Cras);
        sc.bg_readers = 2;
        sc.measure = Duration::from_secs(5);
        let out = run_scenario(sc);
        assert!(out.bg_rate > 100e3, "bg rate {}", out.bg_rate);
    }
}
