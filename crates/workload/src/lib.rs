//! `cras-workload` — the experiment suite: one module per figure/table of
//! the paper's evaluation, plus the ablations its discussion calls for.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig6`] | Figure 6: CRAS vs UFS throughput, 1–25 streams, ±load |
//! | [`fig7`] | Figure 7: per-frame delay under background disk load |
//! | [`admission_acc`] | Figures 8/9: admission-test accuracy |
//! | [`fig10`] | Figure 10: fixed-priority vs round-robin scheduling |
//! | [`fig12`] | Figure 12 + Table 4: disk calibration (Appendix A) |
//! | [`capacity`] | §3.1 capacity claim + Table 1/3 parameters + §2.1 memory |
//! | [`capacity_scaling`] | §4 multi-disk variation: admitted streams vs volumes |
//! | [`frag`] | §3.2 fragmentation problem + rearranger ablation |
//! | [`vbr`] | §3.2 VBR buffer-waste ablation |
//! | [`ablate`] | admission-model ablation (per-stream vs per-read) |
//! | [`qos`] | §2.4 dynamic QOS rate change scenario |
//! | [`faults`] | transient-fault injection vs the deadline manager |
//! | [`failover`] | mirrored placement: volume loss, degraded reads, rebuild |
//! | [`parity_failover`] | rotating parity: volume loss, reconstruction, capacity vs mirroring |
//! | [`steered_reads`] | §17 coded-read steering: g−1 fan-out around a hot spindle |
//! | [`net_delivery`] | §18 NPS delivery: pacing, playout buffers, multicast, loss/retransmit |
//! | [`cache_sharing`] | interval cache: Zipf arrivals, cache-aware admission |
//! | [`cluster_scaling`] | sharded cluster: Zipf catalog, replica routing, whole-shard kill |
//! | [`catalog_scaling`] | §16 cache manager: prefix residency, batched joins, fixed-spindle viewer scaling |
//! | [`interval_overlap`] | pipelined vs serial cross-volume interval issue |
//! | [`measured_capacity`] | admitted load validated by simulation |
//! | [`deploy`] | Figure 5 deployment-configuration cost ablation |
//! | [`disk_sched`] | head-scheduling ablation (FCFS/SSTF/SCAN/C-SCAN) |
//! | [`multi`] | §2.6 multiple CRAS instances sharing one disk |
//! | [`editing`] | playback vs delayed-write editor traffic |
//! | [`buffer_ablation`] | §2.4 FIFO vs time-driven buffer staleness |
//!
//! [`runner`] holds the shared scenario plumbing and [`result`] the
//! serializable output containers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Experiment setup reads clearer as field-by-field overrides of the
// default configuration.
#![allow(clippy::field_reassign_with_default)]

pub mod ablate;
pub mod admission_acc;
pub mod buffer_ablation;
pub mod cache_sharing;
pub mod capacity;
pub mod capacity_scaling;
pub mod catalog_scaling;
pub mod cluster_scaling;
pub mod deploy;
pub mod disk_sched;
pub mod editing;
pub mod failover;
pub mod faults;
pub mod fig10;
pub mod fig12;
pub mod fig6;
pub mod fig7;
pub mod frag;
pub mod interval_overlap;
pub mod measured_capacity;
pub mod multi;
pub mod net_delivery;
pub mod parity_failover;
pub mod qos;
pub mod result;
pub mod runner;
pub mod steered_reads;
pub mod vbr;

pub use result::{Figure, KvTable, Series};
pub use runner::{run_scenario, RunOutcome, Scenario, Storage};
