//! Dynamic QOS control — the §2.4/§3.2 QtPlay scenario.
//!
//! "Our QuickTime player can change the frame rate of a movie at any time
//! without notifying CRAS because the time-driven shared buffer enables
//! applications to support this flexibility." The client halves or
//! two-thirds its consumption rate mid-playback by sampling every third
//! frame; the server keeps retrieving at the recorded rate, obsolete
//! frames age out by timestamp, and nothing stalls.

use cras_media::StreamProfile;
use cras_sim::Duration;
use cras_sys::{PlayerMode, SysConfig, System};

use crate::result::KvTable;

/// Outcome of the rate-change scenario.
#[derive(Clone, Copy, Debug)]
pub struct QosOutcome {
    /// Frames shown in the full-rate phase.
    pub full_rate_frames: u64,
    /// Frames shown in the reduced-rate phase.
    pub reduced_rate_frames: u64,
    /// Frames dropped over the whole run.
    pub dropped: u64,
    /// Chunks the buffer discarded as obsolete (the skipped frames).
    pub discarded: u64,
    /// Maximum frame delay, seconds.
    pub max_delay: f64,
    /// Server bytes fetched (unchanged by the client's rate).
    pub bytes_fetched: u64,
}

/// Plays `total` seconds, dropping to every-third-frame consumption at
/// `switch_at` into playback — without any server call.
pub fn run(total: Duration, switch_at: Duration, seed: u64) -> (KvTable, QosOutcome) {
    assert!(switch_at < total, "switch after end");
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    let mut sys = System::new(cfg);
    let movie = sys.record_movie("qos.mov", StreamProfile::mpeg1(), total.as_secs_f64() + 2.0);
    let client = sys.add_cras_player(&movie, 1).expect("one stream fits");
    let start = sys.start_playback(client);

    sys.run_until(start + switch_at);
    let frames_at_switch = sys.players[&client.0].stats.frames_shown;
    // The dynamic QOS move: the *client* changes its own sampling — no
    // crs_* call is made.
    sys.players.get_mut(&client.0).expect("exists").stride = 3;
    sys.run_until(start + total);

    let p = &sys.players[&client.0];
    let PlayerMode::Cras { stream } = p.mode else {
        unreachable!("cras player")
    };
    let buf_stats = sys.cras.stream(stream).buffer.stats();
    let out = QosOutcome {
        full_rate_frames: frames_at_switch,
        reduced_rate_frames: p.stats.frames_shown - frames_at_switch,
        dropped: p.stats.frames_dropped,
        discarded: buf_stats.discarded,
        max_delay: p.delay_summary().1,
        bytes_fetched: sys.metrics.cras_read_bytes,
    };

    let mut t = KvTable::new(
        "qos",
        "Dynamic QOS: 30 fps -> 10 fps without notifying CRAS",
    );
    t.row(
        "full-rate frames shown",
        format!("{}", out.full_rate_frames),
        "",
    );
    t.row(
        "reduced-rate frames shown",
        format!("{}", out.reduced_rate_frames),
        "",
    );
    t.row("frames dropped", format!("{}", out.dropped), "");
    t.row(
        "chunks aged out by timestamp",
        format!("{}", out.discarded),
        "",
    );
    t.row("max frame delay", format!("{:.4}", out.max_delay), "s");
    t.row(
        "server bytes fetched",
        format!("{}", out.bytes_fetched),
        "B (rate unchanged)",
    );
    (t, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_change_needs_no_server_cooperation() {
        let total = Duration::from_secs(12);
        let switch = Duration::from_secs(6);
        let (_t, out) = run(total, switch, 17);
        // Phase 1: ~30 fps for 6 s => ~180 frames.
        assert!(
            (160..=185).contains(&out.full_rate_frames),
            "full-rate frames {}",
            out.full_rate_frames
        );
        // Phase 2: ~10 fps for 6 s => ~60 frames.
        assert!(
            (45..=70).contains(&out.reduced_rate_frames),
            "reduced frames {}",
            out.reduced_rate_frames
        );
        // No drops, no stalls; skipped frames aged out automatically.
        assert_eq!(out.dropped, 0);
        assert!(out.discarded > 80, "discarded {}", out.discarded);
        assert!(out.max_delay < 0.05, "max delay {}", out.max_delay);
        // Server kept fetching the full stream (~12 s of 187.5 KB/s).
        assert!(
            out.bytes_fetched as f64 > 0.9 * 12.0 * 187_500.0,
            "bytes {}",
            out.bytes_fetched
        );
    }
}
