//! Parity failover experiment: a volume dies under rotating-parity
//! placement, admitted streams keep every deadline, and a rate-controlled
//! reconstruction rebuild recovers the lost volume from the survivors.
//!
//! The mirrored failover experiment ([`crate::failover`]) buys its
//! guarantees with 2× storage; this one buys the same guarantees with
//! `g/(g-1)`× — one parity unit per row of `g-1` data units, the parity
//! volume rotating per row. The price moves from capacity to degraded
//! bandwidth: a read of a lost unit becomes `g-1` reads (the row's
//! surviving data+parity units) fanned into the same per-spindle interval
//! batches, which is why admission charges every band volume the
//! worst-case `2/g` share up front. The sweep measures both sides of the
//! trade: the storage factor against an identically-recorded mirrored
//! layout, and drops/overruns through failure, degraded service and
//! reconstruction.

use cras_core::PlacementPolicy;
use cras_media::StreamProfile;
use cras_sim::{Duration, Instant};
use cras_sys::{MoviePlacement, SysConfig, System};

use crate::result::{Figure, KvTable};

/// Outcome of one parity failover run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParityFailoverOutcome {
    /// Streams requested.
    pub requested: usize,
    /// Streams the admission test accepted.
    pub admitted: usize,
    /// Frames dropped by the admitted players (must stay 0).
    pub dropped: u64,
    /// Deadline warnings from the server (must stay 0).
    pub overruns: u64,
    /// Intervals with at least one stream served by reconstruction.
    pub degraded_intervals: u64,
    /// Survivor reads issued in place of reads on the dead volume.
    pub degraded_reads: u64,
    /// Reads whose data was unreconstructible (must stay 0 with a
    /// single failure).
    pub lost_reads: u64,
    /// Bytes the rebuild wrote onto the replacement volume.
    pub rebuild_bytes: u64,
    /// Rebuild time in seconds.
    pub rebuild_secs: f64,
    /// Stored bytes over media bytes under parity placement
    /// (≈ `g/(g-1)`), measured from the recorded files.
    pub storage_factor: f64,
    /// Stored bytes over media bytes for the same movies recorded
    /// mirrored (≈ 2), measured the same way.
    pub mirrored_storage_factor: f64,
}

/// Stored-over-media byte ratio of the named movies, measured from the
/// per-volume file sizes the recording actually allocated.
fn storage_factor(sys: &System, names: &[String]) -> f64 {
    let mut media = 0u64;
    let mut stored = 0u64;
    for name in names {
        match sys.placement(name) {
            Some(MoviePlacement::Parity {
                base,
                total_bytes,
                data,
                parity,
                ..
            }) => {
                media += total_bytes;
                for (v, &ino) in data.iter().enumerate() {
                    stored += sys.ufs_on(base + v as u32).file_size(ino);
                }
                for (v, &ino) in parity.iter().enumerate() {
                    stored += sys.ufs_on(base + v as u32).file_size(ino);
                }
            }
            Some(MoviePlacement::Mirrored {
                primary,
                mirror,
                ino,
                mirror_ino,
            }) => {
                let sz = sys.ufs_on(*primary).file_size(*ino);
                media += sz;
                stored += sz + sys.ufs_on(*mirror).file_size(*mirror_ino);
            }
            other => panic!("unexpected placement for {name}: {other:?}"),
        }
    }
    stored as f64 / media as f64
}

/// Runs the parity failover scenario at each requested stream count:
/// `volumes` volumes in one parity band (`group = volumes`), kill a band
/// volume a third of the way into the measurement, attach a replacement
/// one second later, and play through the reconstruction. Every run also
/// records the same movies under mirrored placement (setup only, no
/// simulation) to measure the capacity the parity layout saves.
pub fn sweep(
    stream_counts: &[usize],
    volumes: usize,
    measure: Duration,
    seed: u64,
) -> (KvTable, Figure, Vec<ParityFailoverOutcome>) {
    assert!(volumes >= 2, "parity needs at least two volumes");
    let mut out = Vec::new();
    for &requested in stream_counts {
        let mut cfg = SysConfig::default();
        cfg.seed = seed;
        cfg.server.volumes = volumes;
        cfg.server.placement = PlacementPolicy::Parity { group: volumes };
        cfg.server.buffer_budget = 64 << 20;
        let mut sys = System::new(cfg);
        let names: Vec<String> = (0..requested).map(|i| format!("pf{i}.mov")).collect();
        let movies: Vec<_> = names
            .iter()
            .map(|n| sys.record_movie(n, StreamProfile::mpeg1(), measure.as_secs_f64() + 8.0))
            .collect();
        let parity_factor = storage_factor(&sys, &names);
        // The mirrored yardstick: same movies, same seed, recording only.
        let mirrored_factor = {
            let mut mcfg = cfg;
            mcfg.server.placement = PlacementPolicy::Mirrored;
            let mut msys = System::new(mcfg);
            for n in &names {
                msys.record_movie(n, StreamProfile::mpeg1(), measure.as_secs_f64() + 8.0);
            }
            storage_factor(&msys, &names)
        };
        let mut players = Vec::new();
        for m in &movies {
            match sys.add_cras_player(m, 1) {
                Ok(c) => players.push(c),
                Err(_) => break,
            }
        }
        let admitted = players.len();
        let mut start = Instant::ZERO;
        for &p in &players {
            start = sys.start_playback(p).max(start);
        }
        // Every movie spans the whole band, so any band volume serves as
        // the victim.
        let victim = (volumes as u32) / 2;
        sys.run_until(start + Duration::from_secs_f64(measure.as_secs_f64() / 3.0));
        sys.fail_volume(victim);
        // Attach the replacement and reconstruct while playback
        // continues; the dead spindle's fast-error queue may still be
        // draining through the event loop, so retry instead of panicking
        // on the race.
        let mut tries = 0;
        while let Err(e) = sys.try_attach_replacement(victim) {
            tries += 1;
            assert!(tries < 100, "replacement never attached: {e}");
            sys.run_for(Duration::from_millis(100));
        }
        sys.run_until(start + measure);
        let mut guard = 0;
        while sys.rebuild_active() && guard < 3600 {
            sys.run_for(Duration::from_secs(1));
            guard += 1;
        }
        let dropped = players
            .iter()
            .map(|c| sys.players[&c.0].stats.frames_dropped)
            .sum();
        out.push(ParityFailoverOutcome {
            requested,
            admitted,
            dropped,
            overruns: sys.metrics.overruns,
            degraded_intervals: sys.metrics.degraded_intervals,
            degraded_reads: sys.cras.stats().degraded_reads,
            lost_reads: sys.metrics.lost_reads + sys.cras.stats().lost_reads,
            rebuild_bytes: sys.metrics.rebuild_bytes,
            rebuild_secs: sys
                .metrics
                .rebuild_time()
                .map(|t| t.as_secs_f64())
                .unwrap_or(f64::NAN),
            storage_factor: parity_factor,
            mirrored_storage_factor: mirrored_factor,
        });
    }
    let mut t = KvTable::new(
        "parity_failover",
        &format!(
            "Volume failover under rotating-parity placement ({volumes} volumes, group {volumes})"
        ),
    );
    for o in &out {
        t.row(
            &format!("n={}", o.requested),
            format!(
                "admitted={} drops={} warnings={} lost={} degraded_ivals={} \
                 degraded_reads={} rebuild={:.1}s ({:.1} MB) storage={:.3}x (mirrored {:.3}x)",
                o.admitted,
                o.dropped,
                o.overruns,
                o.lost_reads,
                o.degraded_intervals,
                o.degraded_reads,
                o.rebuild_secs,
                o.rebuild_bytes as f64 / (1024.0 * 1024.0),
                o.storage_factor,
                o.mirrored_storage_factor,
            ),
            "",
        );
    }
    let mut f = Figure::new(
        "parity_failover_rebuild",
        "Reconstruction time vs admitted streams",
        "admitted streams",
        "rebuild time (s)",
    );
    for o in &out {
        f.series_mut("rebuild")
            .push(o.admitted as f64, o.rebuild_secs);
        f.series_mut("degraded intervals")
            .push(o.admitted as f64, o.degraded_intervals as f64);
    }
    (t, f, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_streams_keep_every_deadline_through_failover() {
        // The acceptance scenario: N=4, one volume killed mid-run.
        let (_t, _f, outs) = sweep(&[2, 5], 4, Duration::from_secs(12), 0x9F);
        for o in &outs {
            assert_eq!(o.admitted, o.requested, "admission rejected {o:?}");
            assert_eq!(o.dropped, 0, "dropped frames: {o:?}");
            assert_eq!(o.overruns, 0, "deadline warnings: {o:?}");
            assert_eq!(o.lost_reads, 0, "data lost with one failure: {o:?}");
            assert!(o.degraded_intervals > 0, "survivors never served: {o:?}");
            assert!(o.rebuild_bytes > 0, "nothing reconstructed: {o:?}");
            assert!(o.rebuild_secs.is_finite(), "rebuild unfinished: {o:?}");
            // Capacity: ~4/3 against the mirrored 2x. Block rounding and
            // the control file leave a little slack either way.
            assert!(
                (o.storage_factor - 4.0 / 3.0).abs() < 0.05,
                "storage factor {o:?}"
            );
            assert!(
                (o.mirrored_storage_factor - 2.0).abs() < 0.05,
                "mirrored factor {o:?}"
            );
            assert!(
                o.storage_factor < o.mirrored_storage_factor,
                "parity should be cheaper: {o:?}"
            );
        }
        // More streams leave more data+parity bytes on the dead spindle.
        assert!(outs[1].rebuild_bytes > outs[0].rebuild_bytes, "{outs:?}");
    }

    #[test]
    fn parity_failover_is_deterministic() {
        let run = || sweep(&[3], 4, Duration::from_secs(10), 0x9F1).2;
        assert_eq!(run(), run(), "same seed must reproduce bit-for-bit");
    }
}
