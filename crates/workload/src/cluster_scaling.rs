//! Cluster-scaling experiment: a sharded gateway serving a 1000-title
//! Zipf catalog through a mid-run whole-shard kill.
//!
//! The single-server experiments cap out at the spindle bound (14
//! streams per volume, 56 on a 4-volume shard) plus whatever the
//! interval cache chains on top. This experiment shards the catalog
//! over N independent systems behind the `cras-cluster` gateway:
//! consistent hashing spreads titles, the hot head of the Zipf
//! distribution is replicated to two shards, and every open routes to
//! the least-loaded live replica. Mid-run, one whole shard (the busiest
//! one) is killed; sessions for replicated titles are re-admitted on
//! the survivors, which keep serving with zero dropped frames.
//!
//! Two yardsticks are reported, both measured, because they answer
//! different questions:
//!
//! * `scale_vs_baseline_run` — versus a real one-shard run given the
//!   same arrival sequence. One shard cannot even *hold* the catalog
//!   (~300 distinct requested titles at ~34 MB outstrip a 4-volume
//!   shard's ~8.8 GB), so its admission is capped by storage and the
//!   spindle bound together.
//! * `scale_vs_baseline_disk` — versus the baseline's disk-admitted
//!   count (admissions holding spindle reservations, the paper's
//!   notion of server capacity). The acceptance bar — the cluster
//!   serves at least 8× one shard's disk-admitted viewers — is
//!   measured against this yardstick: sharding contributes ~4× and
//!   Zipf-concentrated cache chaining the rest.

use std::collections::{BTreeMap, BTreeSet};

use cras_cluster::{zipf_cdf, zipf_rank, Cluster, ClusterConfig, FailoverReport, Stepping};
use cras_disk::DiskGeometry;
use cras_media::StreamProfile;
use cras_sim::{Duration, Rng};
use cras_sys::{SysConfig, System};

use crate::result::{Figure, KvTable};

/// Catalog ranks that count as hot and get replicated to two shards.
const HOT_TITLES: usize = 32;

/// Zipf exponent of the request distribution.
const THETA: f64 = 1.0;

/// Fraction of raw volume capacity the baseline dares to fill (block
/// and inode metadata take the rest).
const FILL: f64 = 0.90;

/// Per-title filesystem overhead allowance on top of media bytes.
const OVERHEAD: f64 = 1.05;

/// Per-shard stream ceiling the gateway enforces. At 100 us/frame of
/// per-stream consumption cost plus the 40 us/stream scheduler charge,
/// a shard's CPU saturates near 1 / (30 fps x 100 us + 40 us) ≈ 320
/// streams; past that the request scheduler starves and every stream
/// degrades at once. 180 leaves the disk, cache and control planes
/// comfortable headroom.
const STREAM_CAP: usize = 180;

/// Fixed experiment shape; the viewer count is swept separately.
#[derive(Clone, Copy, Debug)]
pub struct ClusterParams {
    /// Number of shards.
    pub shards: usize,
    /// Volumes per shard.
    pub volumes: usize,
    /// Catalog size (titles are ranked 0 = hottest).
    pub titles: usize,
    /// Gap between viewer arrivals.
    pub stagger: Duration,
    /// Run time after the last arrival.
    pub measure: Duration,
    /// Base seed: arrivals, per-shard systems and placement all derive
    /// from it.
    pub seed: u64,
    /// Lockstep or one-thread-per-shard stepping.
    pub stepping: Stepping,
}

impl ClusterParams {
    /// The headline configuration: 4 shards × 4 volumes over a
    /// 1000-title catalog.
    pub fn standard() -> ClusterParams {
        ClusterParams {
            shards: 4,
            volumes: 4,
            titles: 1000,
            stagger: Duration::from_millis(150),
            measure: Duration::from_secs(60),
            seed: 0x5CA1E,
            stepping: Stepping::Lockstep,
        }
    }
}

/// Outcome of one viewer-count run.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterOutcome {
    /// Viewers that arrived.
    pub requested: usize,
    /// Opens the gateway admitted somewhere.
    pub admitted: usize,
    /// Opens refused (admission full on every live replica, or every
    /// replica dead).
    pub rejected: usize,
    /// Sessions still served by live shards at the end (admitted minus
    /// those lost to the shard kill).
    pub served: usize,
    /// Distinct titles actually requested.
    pub distinct_titles: usize,
    /// Streams admitted against cache budgets on the surviving shards.
    pub cache_admitted: u64,
    /// Sessions the kill moved to a surviving replica.
    pub rerouted: usize,
    /// Sessions lost to the kill (unreplicated title, or survivors
    /// full).
    pub lost: usize,
    /// What the kill did, in full.
    pub failover: FailoverReport,
    /// Frames shown by live sessions (sanity: survivors kept playing).
    pub frames_shown: u64,
    /// Frames dropped by live sessions (must stay 0 through the kill).
    pub dropped: u64,
    /// Deadline warnings on live shards (must stay 0).
    pub overruns: u64,
    /// Observed request share of the 32 hottest titles.
    pub head_share_observed: f64,
    /// One-shard baseline: admitted viewers (same arrivals, same cache).
    pub baseline_admitted: usize,
    /// One-shard baseline: admissions holding disk reservations.
    pub baseline_disk_admitted: usize,
    /// Titles the one-shard baseline could store before running out of
    /// volume capacity.
    pub baseline_titles_held: usize,
    /// `served / baseline_disk_admitted` — the acceptance yardstick.
    pub scale_vs_baseline_disk: f64,
    /// `served / baseline_admitted` — versus the full one-shard run.
    pub scale_vs_baseline_run: f64,
}

/// The per-shard system configuration both the cluster and the
/// baseline use.
fn shard_config(p: &ClusterParams) -> SysConfig {
    let mut cfg = SysConfig::default();
    cfg.seed = p.seed;
    cfg.server.volumes = p.volumes;
    cfg.server.buffer_budget = 64 << 20;
    // The cache is what lets a shard serve more viewers than spindles:
    // repeat viewers of a hot title chain off each other's windows. The
    // 30 s gap covers the arrival spacing of the Zipf head; the budget
    // bounds the chained reservations.
    cfg.server.cache_budget = 512 << 20;
    cfg.server.max_cache_gap = Duration::from_secs(30);
    // Cluster viewers are remote set-tops: a shard ships frames onto
    // the network, it does not software-decode them on its own CPU. The
    // default 500 us/frame models the paper's same-box QtPlay setup and
    // would saturate a shard's CPU near 66 streams, starving the
    // interval scheduler; a copy-out to the wire is far cheaper.
    cfg.costs.decode = Duration::from_micros(100);
    cfg
}

/// The arrival sequence: a pure function of the seed, so the cluster
/// run, the baseline run and every replay see identical viewers.
fn arrival_ranks(p: &ClusterParams, requested: usize) -> Vec<usize> {
    let cdf = zipf_cdf(p.titles, THETA);
    let mut rng = Rng::new(p.seed ^ 0x7A1F);
    (0..requested)
        .map(|_| zipf_rank(&cdf, rng.f64_range(0.0, 1.0)))
        .collect()
}

fn title_name(rank: usize) -> String {
    format!("t{rank:04}.mov")
}

/// Runs the cluster scenario at one viewer count and its one-shard
/// baseline. Returns the outcome and the per-shard canonical metrics
/// (the deterministic-replay unit).
pub fn run_one(p: &ClusterParams, requested: usize) -> (ClusterOutcome, Vec<String>) {
    let ranks = arrival_ranks(p, requested);
    let distinct: BTreeSet<usize> = ranks.iter().copied().collect();
    let movie_secs = p.stagger.as_secs_f64() * requested as f64 + p.measure.as_secs_f64() + 30.0;
    let profile = StreamProfile::mpeg1();

    // ----- cluster run ------------------------------------------------
    let mut ccfg = ClusterConfig::new(p.shards, shard_config(p));
    ccfg.replicas = 2.min(p.shards);
    ccfg.hot_titles = HOT_TITLES;
    ccfg.stream_cap = Some(STREAM_CAP);
    ccfg.stepping = p.stepping;
    let mut cl = Cluster::new(ccfg);
    for &rank in &distinct {
        cl.add_title(&title_name(rank), &profile, movie_secs, rank);
    }
    // The busiest shard dies after 60% of the arrivals: survivors must
    // absorb both the re-routed sessions and the remaining arrivals.
    let kill_at = requested * 3 / 5;
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    let mut failover = FailoverReport::default();
    for (i, &rank) in ranks.iter().enumerate() {
        if i == kill_at {
            let victim = busiest_shard(&cl);
            failover = cl.kill_shard(victim);
        }
        match cl.open(&title_name(rank)) {
            Ok(_) => admitted += 1,
            Err(_) => rejected += 1,
        }
        cl.run_for(p.stagger);
    }
    cl.run_for(p.measure);

    let served = cl.sessions().filter(|(_, s)| !s.lost).count();
    let rerouted = cl.sessions().filter(|(_, s)| s.rerouted).count();
    let lost = cl.sessions().filter(|(_, s)| s.lost).count();
    let cache_admitted: u64 = cl
        .shards()
        .iter()
        .filter(|s| s.is_alive())
        .map(|s| s.sys.cras.cache().stats().cache_admitted_streams)
        .sum();
    let overruns: u64 = cl
        .shards()
        .iter()
        .filter(|s| s.is_alive())
        .map(|s| s.sys.metrics.overruns)
        .sum();
    let head_share_observed = cl.popularity().observed_head_share(HOT_TITLES);
    let canon = cl.canonical_metrics();

    // ----- one-shard baseline -----------------------------------------
    // Same arrivals, same per-shard hardware and cache. The catalog is
    // recorded in rank order until the volumes are full; arrivals for
    // titles that did not fit walk away.
    let mut sys = System::new(shard_config(p));
    let capacity = DiskGeometry::st32550n().capacity_bytes() as f64 * p.volumes as f64 * FILL;
    let per_title = movie_secs * profile.rate * OVERHEAD;
    let mut stored = 0.0;
    let mut movies = BTreeMap::new();
    for &rank in &distinct {
        if stored + per_title > capacity {
            break;
        }
        stored += per_title;
        let m = sys.record_movie(&title_name(rank), profile, movie_secs);
        movies.insert(rank, m);
    }
    let baseline_titles_held = movies.len();
    let mut baseline_admitted = 0usize;
    for &rank in &ranks {
        if let Some(m) = movies.get(&rank) {
            if let Ok(c) = sys.add_cras_player(m, 1) {
                sys.start_playback(c);
                baseline_admitted += 1;
            }
        }
        sys.run_for(p.stagger);
    }
    sys.run_for(p.measure);
    let baseline_cache = sys.cras.cache().stats().cache_admitted_streams as usize;
    let baseline_disk_admitted = baseline_admitted.saturating_sub(baseline_cache);

    let outcome = ClusterOutcome {
        requested,
        admitted,
        rejected,
        served,
        distinct_titles: distinct.len(),
        cache_admitted,
        rerouted,
        lost,
        failover,
        frames_shown: cl.live_frames_shown(),
        dropped: cl.live_frames_dropped(),
        overruns,
        head_share_observed,
        baseline_admitted,
        baseline_disk_admitted,
        baseline_titles_held,
        scale_vs_baseline_disk: served as f64 / baseline_disk_admitted.max(1) as f64,
        scale_vs_baseline_run: served as f64 / baseline_admitted.max(1) as f64,
    };
    (outcome, canon)
}

/// The live shard serving the most sessions (ties to the lowest id) —
/// the worst-case victim for the kill.
fn busiest_shard(cl: &Cluster) -> u32 {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for (_, s) in cl.sessions() {
        if !s.lost {
            *counts.entry(s.shard).or_insert(0) += 1;
        }
    }
    let mut best = cl
        .shards()
        .iter()
        .find(|s| s.is_alive())
        .map(|s| s.id)
        .unwrap_or(0);
    let mut best_count = 0;
    for (&shard, &count) in &counts {
        if count > best_count {
            best = shard;
            best_count = count;
        }
    }
    best
}

/// Sweeps the viewer count over the fixed cluster shape.
pub fn sweep(p: &ClusterParams, viewer_counts: &[usize]) -> (KvTable, Figure, Vec<ClusterOutcome>) {
    let outs: Vec<ClusterOutcome> = viewer_counts.iter().map(|&n| run_one(p, n).0).collect();
    let mut t = KvTable::new(
        "cluster_scaling",
        &format!(
            "{} shards x {} volumes, {}-title Zipf({THETA}) catalog, busiest shard killed mid-run",
            p.shards, p.volumes, p.titles
        ),
    );
    for o in &outs {
        t.row(
            &format!("viewers={}", o.requested),
            format!(
                "admitted={} served={} cache_admitted={} rerouted={} lost={} \
                 drops={} warnings={} baseline={} baseline_disk={} \
                 scale_disk={:.1}x scale_run={:.1}x",
                o.admitted,
                o.served,
                o.cache_admitted,
                o.rerouted,
                o.lost,
                o.dropped,
                o.overruns,
                o.baseline_admitted,
                o.baseline_disk_admitted,
                o.scale_vs_baseline_disk,
                o.scale_vs_baseline_run
            ),
            "",
        );
    }
    let mut f = Figure::new(
        "cluster_scaling",
        "Served viewers vs arrivals: cluster and one-shard baseline",
        "viewers requested",
        "viewers served",
    );
    for o in &outs {
        let x = o.requested as f64;
        f.series_mut("cluster-served").push(x, o.served as f64);
        f.series_mut("one-shard-admitted")
            .push(x, o.baseline_admitted as f64);
        f.series_mut("one-shard-disk-admitted")
            .push(x, o.baseline_disk_admitted as f64);
    }
    (t, f, outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small shape that keeps the debug-mode test quick: 3 shards of
    /// 2 volumes, a 60-title catalog.
    fn small() -> ClusterParams {
        ClusterParams {
            shards: 3,
            volumes: 2,
            titles: 60,
            stagger: Duration::from_millis(400),
            measure: Duration::from_secs(12),
            seed: 0x5CA1F,
            stepping: Stepping::Lockstep,
        }
    }

    #[test]
    fn cluster_outscales_one_shard_and_survives_the_kill() {
        let (o, _) = run_one(&small(), 120);
        // The cluster serves more than one shard's disk bound, with the
        // kill absorbed: re-routed sessions exist, frames kept flowing,
        // and nobody on a live shard dropped a frame or missed a
        // deadline.
        assert!(o.admitted > 0 && o.served > 0, "{o:?}");
        assert!(
            o.served as f64 > 1.5 * o.baseline_disk_admitted as f64,
            "no scaling: {o:?}"
        );
        assert!(o.rerouted > 0, "kill moved nothing: {o:?}");
        assert_eq!(o.failover.rerouted, o.rerouted, "{o:?}");
        assert!(o.frames_shown > 0, "{o:?}");
        assert_eq!(o.dropped, 0, "dropped frames: {o:?}");
        assert_eq!(o.overruns, 0, "deadline warnings: {o:?}");
        // Zipf head concentration is what replication banks on.
        assert!(o.head_share_observed > 0.3, "{o:?}");
    }

    #[test]
    fn replay_is_byte_identical_per_shard() {
        let a = run_one(&small(), 60);
        let b = run_one(&small(), 60);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "per-shard canonical metrics diverged");
    }

    #[test]
    fn parallel_stepping_matches_lockstep() {
        let mut pp = small();
        let (a, ca) = run_one(&pp, 60);
        pp.stepping = Stepping::Parallel;
        let (b, cb) = run_one(&pp, 60);
        assert_eq!(a, b);
        assert_eq!(ca, cb, "per-shard canonical metrics diverged");
    }
}
