//! VBR buffer-waste ablation — §3.2 problem 1.
//!
//! "The sizes of video data compressed by JPEG or MPEG varies
//! significantly. In this case, the rate of a stream is not constant.
//! CRAS allocates buffers for retrieving within each interval time based
//! on worst case bandwidth. If the average bandwidth is much less than
//! the worst case bandwidth, much of the buffer space may not be used."
//!
//! The experiment plays one CBR and one VBR stream of equal *average*
//! rate and reports allocated buffer capacity vs the maximum occupancy
//! actually reached.

use cras_media::StreamProfile;
use cras_sim::Duration;
use cras_sys::{PlayerMode, SysConfig, System};

use crate::result::KvTable;

/// Buffer usage of one stream type.
#[derive(Clone, Copy, Debug)]
pub struct BufferUsage {
    /// Worst-case rate the stream was admitted with (B/s).
    pub admitted_rate: f64,
    /// Average rate actually delivered (B/s).
    pub avg_rate: f64,
    /// Allocated buffer capacity `B_i` (bytes).
    pub allocated: u64,
    /// Maximum occupancy reached (bytes).
    pub max_used: u64,
}

impl BufferUsage {
    /// Fraction of the allocation never used.
    pub fn waste(&self) -> f64 {
        if self.allocated == 0 {
            0.0
        } else {
            1.0 - self.max_used as f64 / self.allocated as f64
        }
    }
}

fn run_one(profile: StreamProfile, measure: Duration, seed: u64) -> BufferUsage {
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    let mut sys = System::new(cfg);
    let movie = sys.record_movie("m.mov", profile, measure.as_secs_f64() + 8.0);
    let admitted_rate = movie.worst_rate();
    let avg_rate = movie.avg_rate();
    let client = sys.add_cras_player(&movie, 1).expect("one stream fits");
    let start = sys.start_playback(client);
    sys.run_until(start + measure);
    let PlayerMode::Cras { stream } = sys.players[&client.0].mode else {
        unreachable!("cras player");
    };
    let buf = &sys.cras.stream(stream).buffer;
    BufferUsage {
        admitted_rate,
        avg_rate,
        allocated: buf.capacity(),
        max_used: buf.stats().max_bytes,
    }
}

/// Runs the CBR/VBR comparison.
pub fn run(measure: Duration, seed: u64) -> (KvTable, BufferUsage, BufferUsage) {
    let cbr = run_one(StreamProfile::mpeg1(), measure, seed);
    let vbr = run_one(StreamProfile::jpeg_vbr(187_500.0), measure, seed);
    let mut t = KvTable::new("vbr", "§3.2 VBR buffer-waste ablation");
    for (label, u) in [("CBR", &cbr), ("VBR", &vbr)] {
        t.row(
            &format!("{label} admitted (worst) rate"),
            format!("{:.0}", u.admitted_rate),
            "B/s",
        );
        t.row(
            &format!("{label} average rate"),
            format!("{:.0}", u.avg_rate),
            "B/s",
        );
        t.row(
            &format!("{label} buffer allocated"),
            format!("{}", u.allocated),
            "B",
        );
        t.row(
            &format!("{label} buffer max used"),
            format!("{}", u.max_used),
            "B",
        );
        t.row(
            &format!("{label} waste"),
            format!("{:.1}", u.waste() * 100.0),
            "%",
        );
    }
    (t, cbr, vbr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vbr_wastes_more_buffer_than_cbr() {
        let (_t, cbr, vbr) = run(Duration::from_secs(10), 31);
        // VBR admission uses the worst-case rate, well above average.
        assert!(
            vbr.admitted_rate > 1.3 * vbr.avg_rate,
            "worst {} vs avg {}",
            vbr.admitted_rate,
            vbr.avg_rate
        );
        assert!(
            vbr.waste() > cbr.waste() + 0.05,
            "VBR waste {} vs CBR waste {}",
            vbr.waste(),
            cbr.waste()
        );
        // Both stayed within allocation (the admission guarantee).
        assert!(cbr.max_used <= cbr.allocated);
        assert!(vbr.max_used <= vbr.allocated);
    }
}
