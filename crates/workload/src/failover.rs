//! Failover experiment: a volume dies under mirrored placement, admitted
//! streams keep every deadline, and a rate-controlled rebuild restores
//! the lost replicas.
//!
//! The redundancy argument has three legs, and each is measured here:
//! admission charged the full rate on *both* replica volumes, so a
//! surviving spindle can carry its streams alone; failed reads remap by
//! logical byte range to the surviving replica inside the same interval
//! machinery (degraded reads); and the rebuild runs through the
//! *normal-priority* disk queue, so the dual-queue driver's strict
//! real-time priority keeps the copy traffic invisible to admitted
//! streams. The sweep reports rebuild time against the admitted-stream
//! count: more admitted streams mean more replica bytes on the dead
//! spindle, and a longer (but still harmless) rebuild.

use cras_core::PlacementPolicy;
use cras_media::StreamProfile;
use cras_sim::{Duration, Instant};
use cras_sys::{MoviePlacement, SysConfig, System};

use crate::result::{Figure, KvTable};

/// Outcome of one failover run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailoverOutcome {
    /// Streams requested.
    pub requested: usize,
    /// Streams the admission test accepted.
    pub admitted: usize,
    /// Frames dropped by the admitted players (must stay 0).
    pub dropped: u64,
    /// Deadline warnings from the server (must stay 0).
    pub overruns: u64,
    /// Intervals served from a mirror while the primary was down.
    pub degraded_intervals: u64,
    /// In-flight reads re-issued against the surviving replica.
    pub degraded_reads: u64,
    /// Bytes the rebuild copied onto the replacement volume.
    pub rebuild_bytes: u64,
    /// Rebuild copy time in seconds.
    pub rebuild_secs: f64,
}

/// Runs the failover scenario at each requested stream count: `volumes`
/// mirrored volumes, kill the first movie's primary a third of the way
/// into the measurement, attach a replacement one second later, and play
/// through the rebuild.
pub fn sweep(
    stream_counts: &[usize],
    volumes: usize,
    measure: Duration,
    seed: u64,
) -> (KvTable, Figure, Vec<FailoverOutcome>) {
    assert!(volumes >= 2, "failover needs at least two volumes");
    let mut out = Vec::new();
    for &requested in stream_counts {
        let mut cfg = SysConfig::default();
        cfg.seed = seed;
        cfg.server.volumes = volumes;
        cfg.server.placement = PlacementPolicy::Mirrored;
        cfg.server.buffer_budget = 64 << 20;
        let mut sys = System::new(cfg);
        let movies: Vec<_> = (0..requested)
            .map(|i| {
                sys.record_movie(
                    &format!("fo{i}.mov"),
                    StreamProfile::mpeg1(),
                    measure.as_secs_f64() + 8.0,
                )
            })
            .collect();
        let mut players = Vec::new();
        for m in &movies {
            match sys.add_cras_player(m, 1) {
                Ok(c) => players.push(c),
                Err(_) => break,
            }
        }
        let admitted = players.len();
        let mut start = Instant::ZERO;
        for &p in &players {
            start = sys.start_playback(p).max(start);
        }
        let victim = match sys.placement("fo0.mov") {
            Some(MoviePlacement::Mirrored { primary, .. }) => *primary,
            other => panic!("movie 0 is not mirrored: {other:?}"),
        };
        sys.run_until(start + Duration::from_secs_f64(measure.as_secs_f64() / 3.0));
        sys.fail_volume(victim);
        // Attach the replacement and rebuild while playback continues.
        // Under load the dead spindle's fast-error queue may still be
        // draining through the event loop, so retry until the device is
        // free instead of panicking on the race.
        let mut tries = 0;
        while let Err(e) = sys.try_attach_replacement(victim) {
            tries += 1;
            assert!(tries < 100, "replacement never attached: {e}");
            sys.run_for(Duration::from_millis(100));
        }
        sys.run_until(start + measure);
        let mut guard = 0;
        while sys.rebuild_active() && guard < 3600 {
            sys.run_for(Duration::from_secs(1));
            guard += 1;
        }
        let dropped = players
            .iter()
            .map(|c| sys.players[&c.0].stats.frames_dropped)
            .sum();
        out.push(FailoverOutcome {
            requested,
            admitted,
            dropped,
            overruns: sys.metrics.overruns,
            degraded_intervals: sys.metrics.degraded_intervals,
            degraded_reads: sys.metrics.degraded_reads,
            rebuild_bytes: sys.metrics.rebuild_bytes,
            rebuild_secs: sys
                .metrics
                .rebuild_time()
                .map(|t| t.as_secs_f64())
                .unwrap_or(f64::NAN),
        });
    }
    let mut t = KvTable::new(
        "failover",
        &format!("Volume failover under mirrored placement ({volumes} volumes)"),
    );
    for o in &out {
        t.row(
            &format!("n={}", o.requested),
            format!(
                "admitted={} drops={} warnings={} degraded_ivals={} degraded_reads={} \
                 rebuild={:.1}s ({:.1} MB)",
                o.admitted,
                o.dropped,
                o.overruns,
                o.degraded_intervals,
                o.degraded_reads,
                o.rebuild_secs,
                o.rebuild_bytes as f64 / (1024.0 * 1024.0)
            ),
            "",
        );
    }
    let mut f = Figure::new(
        "failover_rebuild",
        "Rebuild time vs admitted streams",
        "admitted streams",
        "rebuild time (s)",
    );
    for o in &out {
        f.series_mut("rebuild")
            .push(o.admitted as f64, o.rebuild_secs);
        f.series_mut("degraded intervals")
            .push(o.admitted as f64, o.degraded_intervals as f64);
    }
    (t, f, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrored_streams_keep_every_deadline_through_failover() {
        let (_t, _f, outs) = sweep(&[2, 6], 4, Duration::from_secs(12), 0xF0);
        for o in &outs {
            assert_eq!(o.admitted, o.requested, "admission rejected {o:?}");
            assert_eq!(o.dropped, 0, "dropped frames: {o:?}");
            assert_eq!(o.overruns, 0, "deadline warnings: {o:?}");
            assert!(o.degraded_intervals > 0, "mirror never served: {o:?}");
            assert!(o.rebuild_bytes > 0, "nothing rebuilt: {o:?}");
            assert!(o.rebuild_secs.is_finite(), "rebuild unfinished: {o:?}");
        }
        // More streams leave more replica bytes on the dead spindle.
        assert!(outs[1].rebuild_bytes > outs[0].rebuild_bytes, "{outs:?}");
    }

    #[test]
    fn failover_is_deterministic() {
        let run = || sweep(&[4], 4, Duration::from_secs(10), 0xF1).2;
        assert_eq!(run(), run(), "same seed must reproduce bit-for-bit");
    }
}
