//! Measured capacity: the §3.1 claim validated end-to-end.
//!
//! The closed-form sweep ([`crate::capacity`]) says how many streams the
//! admission test accepts per interval time; this experiment *runs* the
//! admitted load and verifies the guarantee held — zero dropped frames
//! and zero deadline warnings — and also runs one stream beyond the
//! admitted count to show the margin that the test's pessimism leaves.

use cras_core::{Admission, AdmissionModel, StreamParams};
use cras_media::StreamProfile;
use cras_sim::{Duration, Instant};
use cras_sys::{SysConfig, System};

use crate::result::KvTable;

/// Outcome of one validated interval point.
#[derive(Clone, Copy, Debug)]
pub struct MeasuredPoint {
    /// Interval time (seconds).
    pub interval: f64,
    /// Streams the admission test accepted.
    pub admitted: usize,
    /// Dropped frames when running exactly the admitted load.
    pub dropped_at_admitted: u64,
    /// Deadline warnings at the admitted load.
    pub overruns_at_admitted: u64,
    /// Dropped frames when running admitted + extra streams (the
    /// pessimism margin usually absorbs a few).
    pub dropped_beyond: u64,
}

fn run_load(interval: f64, streams: usize, measure: Duration, seed: u64) -> (u64, u64) {
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    cfg.server.interval = Duration::from_secs_f64(interval);
    cfg.server.buffer_budget = 256 << 20;
    cfg.enforce_admission = false;
    let mut sys = System::new(cfg);
    let movies: Vec<_> = (0..streams)
        .map(|i| {
            sys.record_movie(
                &format!("c{i}.mov"),
                StreamProfile::mpeg1(),
                measure.as_secs_f64() + 4.0 * interval + 6.0,
            )
        })
        .collect();
    let players: Vec<_> = movies
        .iter()
        .map(|m| sys.add_cras_player(m, 1).expect("admission off"))
        .collect();
    let mut start = Instant::ZERO;
    for &p in &players {
        start = sys.start_playback(p).max(start);
    }
    sys.run_until(start + measure);
    let dropped = sys.players.values().map(|p| p.stats.frames_dropped).sum();
    (dropped, sys.metrics.overruns)
}

/// Validates the admitted capacity at each interval, plus `extra` streams
/// beyond it.
pub fn validate(
    intervals: &[f64],
    extra: usize,
    measure: Duration,
    seed: u64,
) -> (KvTable, Vec<MeasuredPoint>) {
    let mut scratch: cras_disk::DiskDevice<u8> = cras_disk::DiskDevice::st32550n();
    let cal = cras_disk::calibrate::calibrate(&mut scratch, 64 * 1024);
    let adm = Admission::new(cal.params, AdmissionModel::Paper);
    let proto = StreamParams::new(187_500.0, 6_250.0);
    let mut points = Vec::new();
    let mut t = KvTable::new(
        "measured-capacity",
        "Admitted load validated by simulation (MPEG1 streams)",
    );
    for &interval in intervals {
        let admitted = adm.capacity(interval, proto, u64::MAX / 4, 100);
        let (dropped_at, overruns_at) = run_load(interval, admitted, measure, seed);
        let (dropped_beyond, _) = run_load(interval, admitted + extra, measure, seed ^ 1);
        points.push(MeasuredPoint {
            interval,
            admitted,
            dropped_at_admitted: dropped_at,
            overruns_at_admitted: overruns_at,
            dropped_beyond,
        });
        t.row(
            &format!("T={interval}s"),
            format!(
                "admitted={admitted} drops@admitted={dropped_at} warnings={overruns_at} drops@+{extra}={dropped_beyond}"
            ),
            "",
        );
    }
    (t, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admitted_load_is_guaranteed() {
        let (_t, points) = validate(&[0.5], 3, Duration::from_secs(12), 0xCAFE);
        let p = points[0];
        assert!((13..=16).contains(&p.admitted), "admitted {}", p.admitted);
        assert_eq!(p.dropped_at_admitted, 0, "guarantee violated: {p:?}");
        assert_eq!(p.overruns_at_admitted, 0, "warnings at admitted load");
        // Beyond admission there is no guarantee; the pessimism margin
        // keeps degradation graceful (a few percent of frame slots), not
        // zero.
        let slots_beyond = ((p.admitted + 3) as u64) * 12 * 30;
        assert!(
            p.dropped_beyond < slots_beyond / 10,
            "beyond-admission degradation should be graceful: {p:?}"
        );
    }
}
