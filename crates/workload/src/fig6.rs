//! Figure 6 — CRAS vs UFS aggregate throughput as the number of 1.5 Mbps
//! streams grows, with and without background disk load.
//!
//! Paper findings to reproduce in shape:
//! * CRAS ramps linearly and flattens near 55% of the 6.5 MB/s disk rate;
//! * background file access barely affects CRAS;
//! * UFS supports up to ~9 streams without load;
//! * UFS collapses ("cannot support even one stream") with load.

use cras_media::StreamProfile;
use cras_sim::Duration;
use cras_sys::SchedMode;

use crate::result::Figure;
use crate::runner::{run_scenario, Scenario, Storage};

/// Sweep configuration.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Config {
    /// Largest stream count.
    pub max_streams: usize,
    /// Stream-count step.
    pub step: usize,
    /// Measurement window per run.
    pub measure: Duration,
    /// Base seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            max_streams: 25,
            step: 1,
            measure: Duration::from_secs(20),
            seed: 6_1996,
        }
    }
}

fn one(storage: Storage, n: usize, load: bool, cfg: &Fig6Config) -> f64 {
    let sc = Scenario {
        storage,
        streams: n,
        profile: StreamProfile::mpeg1(),
        bg_readers: if load { 2 } else { 0 },
        bg_pause: Duration::ZERO,
        hogs: 0,
        sched: SchedMode::FixedPriority,
        measure: cfg.measure,
        seed: cfg.seed ^ ((n as u64) << 2) ^ (0x100 * load as u64),
        enforce_admission: false,
    };
    run_scenario(sc).throughput
}

/// Runs the full sweep.
pub fn run(cfg: &Fig6Config) -> Figure {
    let mut fig = Figure::new(
        "fig6",
        "CRAS vs UFS throughput (1.5 Mbps streams)",
        "streams",
        "bytes/s",
    );
    let mut n = 1;
    while n <= cfg.max_streams {
        for (name, storage, load) in [
            ("CRAS:no-load", Storage::Cras, false),
            ("CRAS:load", Storage::Cras, true),
            ("UFS:no-load", Storage::Ufs, false),
            ("UFS:load", Storage::Ufs, true),
        ] {
            let y = one(storage, n, load, cfg);
            fig.series_mut(name).push(n as f64, y);
        }
        n += cfg.step;
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced sweep asserting the paper's qualitative findings. The
    /// full-resolution sweep runs in the bench binary.
    #[test]
    fn reduced_sweep_shows_paper_shape() {
        let cfg = Fig6Config {
            max_streams: 13,
            step: 6, // n = 1, 7, 13.
            measure: Duration::from_secs(12),
            seed: 99,
        };
        let fig = run(&cfg);
        let get = |name: &str| {
            fig.series
                .iter()
                .find(|s| s.name == name)
                .expect("series exists")
                .clone()
        };
        let cras_nl = get("CRAS:no-load");
        let cras_l = get("CRAS:load");
        let ufs_nl = get("UFS:no-load");
        let ufs_l = get("UFS:load");

        // CRAS scales: 13 streams ≈ 13 × 187.5 KB/s.
        let c13 = cras_nl.last_y().unwrap();
        assert!((2.0e6..3.1e6).contains(&c13), "CRAS no-load @13 = {c13}");
        // Background load does not cost CRAS more than ~15%.
        let cl13 = cras_l.last_y().unwrap();
        assert!(cl13 > 0.85 * c13, "CRAS load {cl13} vs {c13}");

        // UFS under load cannot sustain even 1 stream's demand...
        let u1_load = ufs_l.points[0].1;
        assert!(u1_load < 0.95 * 187_500.0, "UFS load @1 = {u1_load}");
        // ...and far below CRAS at high counts.
        let u13_load = ufs_l.last_y().unwrap();
        assert!(u13_load < 0.4 * cl13, "UFS load @13 = {u13_load}");

        // UFS without load keeps up at 1 stream but saturates below CRAS
        // by 13.
        let u1 = ufs_nl.points[0].1;
        assert!((150e3..230e3).contains(&u1), "UFS no-load @1 = {u1}");
        let u13 = ufs_nl.last_y().unwrap();
        assert!(u13 < c13, "UFS no-load @13 = {u13} vs CRAS {c13}");
    }
}
