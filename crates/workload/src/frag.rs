//! Fragmentation ablation — the §3.2 editing problem and the proposed
//! rearranger, quantified.
//!
//! "Editing a continuous media file may make the layout of blocks random.
//! Noncontinuous data makes the seek time long, and the throughput of the
//! disk is decreased." Three conditions over the same multi-stream
//! workload: freshly recorded (contiguous) files, edit-fragmented files,
//! and fragmented-then-rearranged files.

use cras_media::{fragment_movie, rearrange_movie, Movie, StreamProfile};
use cras_sim::{Duration, Instant, Rng};
use cras_sys::{SysConfig, System};

use crate::result::KvTable;

/// One condition's measurements.
#[derive(Clone, Copy, Debug)]
pub struct FragOutcome {
    /// Aggregate CRAS read throughput, bytes/s.
    pub throughput: f64,
    /// Mean contiguity of the files (1.0 = fully contiguous).
    pub contiguity: f64,
    /// Deadline overruns during the run.
    pub overruns: u64,
    /// Frames dropped by the players.
    pub dropped: u64,
    /// Disk reads issued per interval on average (fragmentation splits
    /// reads).
    pub reads_per_interval: f64,
}

/// Layout condition under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Condition {
    /// Freshly recorded, contiguous.
    Contiguous,
    /// Edit-fragmented (severity 1.0).
    Fragmented,
    /// Fragmented, then rearranged.
    Rearranged,
}

impl Condition {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Condition::Contiguous => "contiguous",
            Condition::Fragmented => "fragmented",
            Condition::Rearranged => "rearranged",
        }
    }
}

/// Runs one condition with `streams` concurrent MPEG-1 players.
pub fn run_condition(cond: Condition, streams: usize, measure: Duration, seed: u64) -> FragOutcome {
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    cfg.enforce_admission = false;
    cfg.server.buffer_budget = 64 << 20;
    let mut sys = System::new(cfg);
    let mut rng = Rng::new(seed ^ 0xF0F0);

    let secs = measure.as_secs_f64() + 8.0;
    let movies: Vec<Movie> = (0..streams)
        .map(|i| {
            let m = sys.record_movie(&format!("m{i}.mov"), StreamProfile::mpeg1(), secs);
            match cond {
                Condition::Contiguous => m,
                Condition::Fragmented => {
                    fragment_movie(sys.ufs_mut(), &m, 1.0, &mut rng).expect("fragmenting fits")
                }
                Condition::Rearranged => {
                    let f =
                        fragment_movie(sys.ufs_mut(), &m, 1.0, &mut rng).expect("fragmenting fits");
                    rearrange_movie(sys.ufs_mut(), &f).expect("rearranging fits")
                }
            }
        })
        .collect();
    let contiguity = movies
        .iter()
        .map(|m| sys.ufs().fragmentation(m.ino).contiguity)
        .sum::<f64>()
        / streams as f64;

    let players: Vec<_> = movies
        .iter()
        .map(|m| sys.add_cras_player(m, 1).expect("admission off"))
        .collect();
    let mut start = Instant::ZERO;
    for &p in &players {
        start = sys.start_playback(p).max(start);
    }
    sys.run_until(start + measure);

    let stats = sys.cras.stats();
    let dropped = sys.players.values().map(|p| p.stats.frames_dropped).sum();
    FragOutcome {
        throughput: sys.metrics.cras_read_bytes as f64 / measure.as_secs_f64(),
        contiguity,
        overruns: sys.metrics.overruns,
        dropped,
        reads_per_interval: if stats.intervals == 0 {
            0.0
        } else {
            stats.reads_issued as f64 / stats.intervals as f64
        },
    }
}

/// Runs all three conditions and renders the comparison table.
pub fn run(streams: usize, measure: Duration, seed: u64) -> (KvTable, [FragOutcome; 3]) {
    let conds = [
        Condition::Contiguous,
        Condition::Fragmented,
        Condition::Rearranged,
    ];
    let outs = conds.map(|c| run_condition(c, streams, measure, seed));
    let mut t = KvTable::new(
        "frag",
        &format!("§3.2 fragmentation ablation ({streams} MPEG1 streams)"),
    );
    for (c, o) in conds.iter().zip(outs.iter()) {
        t.row(
            &format!("{} throughput", c.label()),
            format!("{:.2}", o.throughput / 1e6),
            "MB/s",
        );
        t.row(
            &format!("{} contiguity", c.label()),
            format!("{:.3}", o.contiguity),
            "",
        );
        t.row(
            &format!("{} reads/interval", c.label()),
            format!("{:.1}", o.reads_per_interval),
            "",
        );
        t.row(
            &format!("{} dropped frames", c.label()),
            format!("{}", o.dropped),
            "",
        );
    }
    (t, outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_costs_and_rearranging_recovers() {
        // Enough streams that fragmentation's extra seeks matter.
        let measure = Duration::from_secs(10);
        let contiguous = run_condition(Condition::Contiguous, 8, measure, 77);
        let fragged = run_condition(Condition::Fragmented, 8, measure, 77);
        let fixed = run_condition(Condition::Rearranged, 8, measure, 77);

        assert!(contiguous.contiguity > 0.99);
        assert!(
            fragged.contiguity < 0.5,
            "contiguity {}",
            fragged.contiguity
        );
        assert!(fixed.contiguity > 0.99);

        // Fragmentation splits interval reads into many commands.
        assert!(
            fragged.reads_per_interval > 2.0 * contiguous.reads_per_interval,
            "{} vs {}",
            fragged.reads_per_interval,
            contiguous.reads_per_interval
        );
        // Rearranged performance returns to (near) contiguous.
        assert!(
            (fixed.throughput - contiguous.throughput).abs() / contiguous.throughput < 0.15,
            "{} vs {}",
            fixed.throughput,
            contiguous.throughput
        );
    }
}
