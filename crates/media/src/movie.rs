//! Movie files: generating a stream's chunks and laying the data out
//! through the UFS allocator, exactly as recording through the Unix file
//! system would.

use cras_sim::{Duration, Rng};
use cras_ufs::{FsError, Ino, Ufs};

use crate::chunk::ChunkTable;
use crate::rates::StreamProfile;

/// A movie stored in the file system: the media file plus its control
/// information (the chunk table the paper keeps "in a control file
/// separate from the continuous media data file").
#[derive(Clone, Debug)]
pub struct Movie {
    /// File name in the UFS namespace.
    pub name: String,
    /// Inode of the media data file.
    pub ino: Ino,
    /// The control-file contents.
    pub table: ChunkTable,
    /// The profile it was generated from.
    pub profile: StreamProfile,
}

impl Movie {
    /// Average data rate (bytes/second).
    pub fn avg_rate(&self) -> f64 {
        self.table.avg_rate()
    }

    /// Worst-case data rate used for admission (bytes/second).
    pub fn worst_rate(&self) -> f64 {
        self.table.worst_rate()
    }

    /// Play length.
    pub fn duration(&self) -> Duration {
        self.table.total_duration()
    }
}

/// Generates a chunk table for `play_secs` seconds of `profile`.
///
/// CBR profiles produce identical frames; VBR draws frame sizes from a
/// normal distribution with the profile's coefficient of variation,
/// clamped to `[0.25, 2.5]×` the mean so rates stay physical.
pub fn generate_chunks(profile: &StreamProfile, play_secs: f64, rng: &mut Rng) -> ChunkTable {
    assert!(play_secs > 0.0, "non-positive play length");
    let frames = (play_secs * profile.fps).round() as u32;
    let period = profile.frame_period();
    let mean = profile.bytes_per_frame();
    let items: Vec<(Duration, u32)> = (0..frames)
        .map(|_| {
            let size = if profile.size_cv == 0.0 {
                mean
            } else {
                rng.normal(mean, mean * profile.size_cv)
                    .clamp(mean * 0.25, mean * 2.5)
            };
            (period, size.round() as u32)
        })
        .collect();
    ChunkTable::from_durations_sizes(&items)
}

/// Records a movie: generates chunks, appends the data to a fresh UFS
/// file (allocating real blocks), and stores the control file
/// (`<name>.ctl`, a [`crate::container`] blob) next to it — "this timing
/// information is stored in a control file separate from the continuous
/// media data file".
pub fn record_movie(
    fs: &mut Ufs,
    name: &str,
    profile: StreamProfile,
    play_secs: f64,
    rng: &mut Rng,
) -> Result<Movie, FsError> {
    let table = generate_chunks(&profile, play_secs, rng);
    let ino = fs.create(name)?;
    fs.append(ino, table.total_bytes())?;
    let ctl = crate::container::encode(&table);
    let ctl_ino = fs.create(&format!("{name}.ctl"))?;
    fs.append(ctl_ino, ctl.len() as u64)?;
    Ok(Movie {
        name: name.to_string(),
        ino,
        table,
        profile,
    })
}

/// Opens a movie "the QtPlay way": parse its control file and pair it
/// with the media file. The caller provides the control bytes (the
/// simulation stores layout, not contents, so the encoded table travels
/// with the open call in tests and examples).
pub fn open_movie(
    fs: &Ufs,
    name: &str,
    control_bytes: &[u8],
    profile: StreamProfile,
) -> Result<Movie, crate::container::ContainerError> {
    let table = crate::container::decode(control_bytes)?;
    let ino = fs
        .lookup(name)
        .map_err(|_| crate::container::ContainerError::MissingAtom("media file"))?;
    Ok(Movie {
        name: name.to_string(),
        ino,
        table,
        profile,
    })
}

/// Records `n` movies named `{prefix}{i}` with the same profile/length.
pub fn record_library(
    fs: &mut Ufs,
    prefix: &str,
    n: usize,
    profile: StreamProfile,
    play_secs: f64,
    rng: &mut Rng,
) -> Result<Vec<Movie>, FsError> {
    (0..n)
        .map(|i| record_movie(fs, &format!("{prefix}{i}"), profile, play_secs, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_disk::geometry::DiskGeometry;
    use cras_ufs::MkfsParams;

    fn fs() -> Ufs {
        let geom = DiskGeometry::st32550n();
        Ufs::format(&geom, MkfsParams::tuned(&geom), 3)
    }

    #[test]
    fn cbr_movie_rate_is_exact() {
        let mut rng = Rng::new(1);
        let t = generate_chunks(&StreamProfile::mpeg1(), 10.0, &mut rng);
        assert_eq!(t.len(), 300);
        assert!((t.avg_rate() - 187_500.0).abs() < 50.0);
        assert_eq!(t.avg_rate(), t.worst_rate());
    }

    #[test]
    fn vbr_movie_rate_is_approximate() {
        let mut rng = Rng::new(2);
        let p = StreamProfile::jpeg_vbr(187_500.0);
        let t = generate_chunks(&p, 30.0, &mut rng);
        assert!((t.avg_rate() - 187_500.0).abs() / 187_500.0 < 0.1);
        assert!(t.worst_rate() > 1.3 * t.avg_rate());
    }

    #[test]
    fn record_creates_backing_file() {
        let mut fs = fs();
        let mut rng = Rng::new(3);
        let m = record_movie(&mut fs, "m.mov", StreamProfile::mpeg1(), 20.0, &mut rng).unwrap();
        assert_eq!(fs.file_size(m.ino), m.table.total_bytes());
        assert_eq!(fs.lookup("m.mov").unwrap(), m.ino);
        // 20 s of MPEG-1 is about 3.75 MB.
        assert!((m.table.total_bytes() as f64 - 3.75e6).abs() < 1e5);
    }

    #[test]
    fn library_is_distinct_files() {
        let mut fs = fs();
        let mut rng = Rng::new(4);
        let lib = record_library(&mut fs, "mov", 5, StreamProfile::mpeg1(), 5.0, &mut rng).unwrap();
        assert_eq!(lib.len(), 5);
        let inos: std::collections::BTreeSet<_> = lib.iter().map(|m| m.ino).collect();
        assert_eq!(inos.len(), 5);
    }

    #[test]
    fn duplicate_name_fails() {
        let mut fs = fs();
        let mut rng = Rng::new(5);
        record_movie(&mut fs, "x", StreamProfile::mpeg1(), 1.0, &mut rng).unwrap();
        let e = record_movie(&mut fs, "x", StreamProfile::mpeg1(), 1.0, &mut rng);
        assert!(matches!(e, Err(FsError::Exists)));
    }

    #[test]
    fn open_movie_roundtrips_through_the_control_file() {
        let mut fs = fs();
        let mut rng = Rng::new(7);
        let m = record_movie(
            &mut fs,
            "r.mov",
            StreamProfile::jpeg_vbr(187_500.0),
            8.0,
            &mut rng,
        )
        .unwrap();
        // The .ctl file exists beside the media file.
        let ctl_ino = fs.lookup("r.mov.ctl").unwrap();
        let ctl_bytes = crate::container::encode(&m.table);
        assert_eq!(fs.file_size(ctl_ino), ctl_bytes.len() as u64);
        // QtPlay-style open: parse control bytes, resolve the media file.
        let opened = open_movie(&fs, "r.mov", &ctl_bytes, m.profile).unwrap();
        assert_eq!(opened.ino, m.ino);
        assert_eq!(opened.table, m.table);
    }

    #[test]
    fn open_movie_rejects_missing_media() {
        let fs = fs();
        let table = {
            let mut rng = Rng::new(8);
            generate_chunks(&StreamProfile::mpeg1(), 1.0, &mut rng)
        };
        let bytes = crate::container::encode(&table);
        assert!(open_movie(&fs, "ghost.mov", &bytes, StreamProfile::mpeg1()).is_err());
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_length_panics() {
        let mut rng = Rng::new(6);
        generate_chunks(&StreamProfile::mpeg1(), 0.0, &mut rng);
    }
}
