//! The paper's stream classes and rate constants.
//!
//! "The data rate of each stream is 1.5Mbps. This rate corresponds to a
//! MPEG1 data stream" and "6Mbps ... corresponds to MPEG2". Rates are
//! decimal megabits per second.

use cras_sim::Duration;

/// Bytes per second of an MPEG-1 stream (1.5 Mbps).
pub const MPEG1_RATE: f64 = 1_500_000.0 / 8.0;

/// Bytes per second of an MPEG-2 stream (6 Mbps).
pub const MPEG2_RATE: f64 = 6_000_000.0 / 8.0;

/// The paper's standard video frame rate.
pub const FPS_30: f64 = 30.0;

/// Converts megabits/second to bytes/second.
pub fn mbps(m: f64) -> f64 {
    m * 1_000_000.0 / 8.0
}

/// A stream profile: frame rate plus data rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamProfile {
    /// Frames (chunks) per second.
    pub fps: f64,
    /// Average data rate, bytes/second.
    pub rate: f64,
    /// Coefficient of variation of frame sizes (0 = CBR).
    pub size_cv: f64,
}

impl StreamProfile {
    /// The paper's MPEG-1-like benchmark stream: 1.5 Mbps at 30 fps, CBR.
    pub fn mpeg1() -> StreamProfile {
        StreamProfile {
            fps: FPS_30,
            rate: MPEG1_RATE,
            size_cv: 0.0,
        }
    }

    /// The paper's MPEG-2-like benchmark stream: 6 Mbps at 30 fps, CBR.
    pub fn mpeg2() -> StreamProfile {
        StreamProfile {
            fps: FPS_30,
            rate: MPEG2_RATE,
            size_cv: 0.0,
        }
    }

    /// A motion-JPEG-like VBR profile (§3.2: "the sizes of video data
    /// compressed by JPEG or MPEG varies significantly").
    pub fn jpeg_vbr(rate: f64) -> StreamProfile {
        StreamProfile {
            fps: FPS_30,
            rate,
            size_cv: 0.35,
        }
    }

    /// Mean bytes per frame.
    pub fn bytes_per_frame(&self) -> f64 {
        self.rate / self.fps
    }

    /// Frame period.
    pub fn frame_period(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates() {
        assert_eq!(MPEG1_RATE, 187_500.0);
        assert_eq!(MPEG2_RATE, 750_000.0);
        assert_eq!(mbps(1.5), MPEG1_RATE);
    }

    #[test]
    fn profile_arithmetic() {
        let p = StreamProfile::mpeg1();
        assert!((p.bytes_per_frame() - 6250.0).abs() < 1e-9);
        assert_eq!(p.frame_period(), Duration::from_secs_f64(1.0 / 30.0));
    }

    #[test]
    fn vbr_has_variance() {
        assert!(StreamProfile::jpeg_vbr(MPEG1_RATE).size_cv > 0.0);
        assert_eq!(StreamProfile::mpeg2().size_cv, 0.0);
    }
}
