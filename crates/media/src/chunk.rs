//! Chunk tables: the per-chunk timing information CRAS consumes.
//!
//! "When an application opens a new continuous media stream by using
//! `crs_open`, the application sends information about the timestamp,
//! duration and size of each chunk ... The timestamp of each block ... is
//! calculated from the sum of the durations of all previous media blocks."
//!
//! A *chunk* is the unit CRAS reads and clients fetch (one video frame or
//! a group of audio samples).

use cras_sim::Duration;

/// Timing and size of one media chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Index within the stream.
    pub index: u32,
    /// Media timestamp: sum of all previous durations.
    pub timestamp: Duration,
    /// Presentation duration of this chunk.
    pub duration: Duration,
    /// Size in bytes.
    pub size: u32,
    /// Byte offset within the media file.
    pub file_offset: u64,
}

impl Chunk {
    /// The timestamp one past this chunk (start of the next).
    pub fn end_timestamp(&self) -> Duration {
        self.timestamp + self.duration
    }
}

/// The full per-stream chunk table (the "control file" contents).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChunkTable {
    chunks: Vec<Chunk>,
    total_bytes: u64,
}

impl ChunkTable {
    /// Builds a table from `(duration, size)` pairs, computing timestamps
    /// and file offsets cumulatively.
    pub fn from_durations_sizes(items: &[(Duration, u32)]) -> ChunkTable {
        let mut chunks = Vec::with_capacity(items.len());
        let mut ts = Duration::ZERO;
        let mut off = 0u64;
        for (i, &(duration, size)) in items.iter().enumerate() {
            chunks.push(Chunk {
                index: i as u32,
                timestamp: ts,
                duration,
                size,
                file_offset: off,
            });
            ts += duration;
            off += size as u64;
        }
        ChunkTable {
            chunks,
            total_bytes: off,
        }
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// The chunks.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// A chunk by index.
    pub fn get(&self, i: u32) -> Option<&Chunk> {
        self.chunks.get(i as usize)
    }

    /// Total media bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total play duration.
    pub fn total_duration(&self) -> Duration {
        self.chunks
            .last()
            .map(|c| c.end_timestamp())
            .unwrap_or(Duration::ZERO)
    }

    /// Average data rate in bytes/second.
    pub fn avg_rate(&self) -> f64 {
        let d = self.total_duration().as_secs_f64();
        if d == 0.0 {
            0.0
        } else {
            self.total_bytes as f64 / d
        }
    }

    /// Worst-case data rate in bytes/second over any single chunk
    /// (`size / duration`, maximized). The paper's admission test uses the
    /// worst case, which §3.2 notes wastes buffer space on VBR streams.
    pub fn worst_rate(&self) -> f64 {
        self.chunks
            .iter()
            .map(|c| {
                let d = c.duration.as_secs_f64();
                if d == 0.0 {
                    0.0
                } else {
                    c.size as f64 / d
                }
            })
            .fold(0.0, f64::max)
    }

    /// Index of the chunk whose `[timestamp, end)` interval contains the
    /// media time `t`, or `None` past the end.
    pub fn chunk_at(&self, t: Duration) -> Option<u32> {
        if self.chunks.is_empty() || t >= self.total_duration() {
            return None;
        }
        let idx = self.chunks.partition_point(|c| c.end_timestamp() <= t);
        Some(idx as u32)
    }

    /// The chunks whose timestamps fall in `[from, to)` — what CRAS must
    /// pre-fetch for one interval.
    pub fn chunks_in(&self, from: Duration, to: Duration) -> &[Chunk] {
        let lo = self.chunks.partition_point(|c| c.timestamp < from);
        let hi = self.chunks.partition_point(|c| c.timestamp < to);
        &self.chunks[lo..hi]
    }

    /// Largest chunk size in bytes (the paper's `C_i` per-chunk term).
    pub fn max_chunk_size(&self) -> u32 {
        self.chunks.iter().map(|c| c.size).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn cbr_table(n: u32, dur_ms: u64, size: u32) -> ChunkTable {
        let items: Vec<(Duration, u32)> = (0..n).map(|_| (ms(dur_ms), size)).collect();
        ChunkTable::from_durations_sizes(&items)
    }

    #[test]
    fn timestamps_are_cumulative() {
        let t = cbr_table(10, 33, 6250);
        assert_eq!(t.get(0).unwrap().timestamp, Duration::ZERO);
        assert_eq!(t.get(3).unwrap().timestamp, ms(99));
        assert_eq!(t.get(3).unwrap().file_offset, 3 * 6250);
        assert_eq!(t.total_bytes(), 62_500);
        assert_eq!(t.total_duration(), ms(330));
    }

    #[test]
    fn rates() {
        // 30 fps, 6250 B/frame => 187 500 B/s.
        let items: Vec<(Duration, u32)> = (0..30)
            .map(|_| (Duration::from_secs_f64(1.0 / 30.0), 6250))
            .collect();
        let t = ChunkTable::from_durations_sizes(&items);
        assert!((t.avg_rate() - 187_500.0).abs() < 100.0);
        assert!((t.worst_rate() - 187_500.0).abs() < 100.0);
    }

    #[test]
    fn chunk_at_finds_interval() {
        let t = cbr_table(10, 100, 1);
        assert_eq!(t.chunk_at(Duration::ZERO), Some(0));
        assert_eq!(t.chunk_at(ms(99)), Some(0));
        assert_eq!(t.chunk_at(ms(100)), Some(1));
        assert_eq!(t.chunk_at(ms(950)), Some(9));
        assert_eq!(t.chunk_at(ms(1000)), None);
    }

    #[test]
    fn chunks_in_window() {
        let t = cbr_table(10, 100, 1);
        let w = t.chunks_in(ms(200), ms(500));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].index, 2);
        assert_eq!(w[2].index, 4);
        assert!(t.chunks_in(ms(2000), ms(3000)).is_empty());
        let all = t.chunks_in(Duration::ZERO, ms(1000));
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn empty_table() {
        let t = ChunkTable::default();
        assert!(t.is_empty());
        assert_eq!(t.total_duration(), Duration::ZERO);
        assert_eq!(t.avg_rate(), 0.0);
        assert_eq!(t.chunk_at(Duration::ZERO), None);
        assert_eq!(t.max_chunk_size(), 0);
    }

    #[test]
    fn vbr_worst_exceeds_avg() {
        let items = vec![(ms(100), 100u32), (ms(100), 300), (ms(100), 200)];
        let t = ChunkTable::from_durations_sizes(&items);
        assert!(t.worst_rate() > t.avg_rate());
        assert_eq!(t.max_chunk_size(), 300);
    }
}
