//! `cras-media` — the continuous-media substrate: streams, chunk tables,
//! movie files, and the editing/fragmentation model.
//!
//! The paper plays QuickTime movies whose timing lives "in a control file
//! separate from the continuous media data file". This crate generates
//! equivalent content:
//!
//! * [`rates`] — the paper's MPEG-1 (1.5 Mbps) / MPEG-2 (6 Mbps) profiles
//!   plus a JPEG-like VBR profile for the §3.2 buffer-waste ablation.
//! * [`chunk`] — per-chunk timestamp/duration/size tables, the
//!   information `crs_open` consumes.
//! * [`movie`] — recording movies into the UFS so they occupy real disk
//!   blocks via the real allocator.
//! * [`fragment`] — editing-induced fragmentation and the rearranger the
//!   paper proposes (§3.2).
//! * [`container`] — a QuickTime-flavoured atom container serializing
//!   chunk tables into on-disk control files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod container;
pub mod fragment;
pub mod movie;
pub mod rates;

pub use chunk::{Chunk, ChunkTable};
pub use container::{decode, encode, ContainerError};
pub use fragment::{fragment_movie, rearrange_movie};
pub use movie::{generate_chunks, record_library, record_movie, Movie};
pub use rates::{mbps, StreamProfile, FPS_30, MPEG1_RATE, MPEG2_RATE};
