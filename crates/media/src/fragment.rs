//! Editing-induced fragmentation and the media-file rearranger.
//!
//! The paper's §3.2 third problem: "editing a continuous media file may
//! make the layout of blocks random. Noncontinuous data makes the seek
//! time long, and the throughput of the disk is decreased ... Our approach
//! needs to rearrange media files whose data blocks are allocated
//! randomly." The rearranger is sketched but not built in the paper; here
//! both the damage and the repair are implemented so the ablation
//! benchmark can quantify the §3.2 discussion.

use cras_sim::Rng;
use cras_ufs::{FsError, Ufs, BSIZE};

use crate::movie::Movie;

/// Re-records a movie with interleaved scratch allocations, producing the
/// fragmented layout an edit session leaves behind.
///
/// `severity` in `(0, 1]` is the fraction of block boundaries that get a
/// foreign block inserted between them (1.0 = fully alternating).
pub fn fragment_movie(
    fs: &mut Ufs,
    movie: &Movie,
    severity: f64,
    rng: &mut Rng,
) -> Result<Movie, FsError> {
    assert!(
        severity > 0.0 && severity <= 1.0,
        "severity must be in (0, 1]"
    );
    let total = movie.table.total_bytes();
    let tmp_name = format!("{}.fragtmp", movie.name);
    let scratch_name = format!("{}.scratch", movie.name);
    let tmp = fs.create(&tmp_name)?;
    // Editing scratch data is written next to the file being edited, which
    // is what steals the blocks between the movie's blocks.
    let scratch = fs.create_near(&scratch_name, tmp)?;
    let nblocks = total.div_ceil(BSIZE as u64);
    let mut written = 0u64;
    for fb in 0..nblocks {
        let step = (total - written).min(BSIZE as u64);
        fs.append(tmp, step)?;
        written += step;
        if fb + 1 < nblocks && rng.chance(severity) {
            fs.colocate_cursor(scratch, tmp);
            fs.append(scratch, BSIZE as u64)?;
        }
    }
    fs.remove(&scratch_name)?;
    fs.remove(&movie.name)?;
    fs.rename(&tmp_name, &movie.name)?;
    Ok(Movie {
        name: movie.name.clone(),
        ino: tmp,
        table: movie.table.clone(),
        profile: movie.profile,
    })
}

/// Rewrites a movie contiguously (the proposed rearranger): a fresh copy
/// through the allocator, then swap names.
pub fn rearrange_movie(fs: &mut Ufs, movie: &Movie) -> Result<Movie, FsError> {
    let tmp_name = format!("{}.defrag", movie.name);
    let tmp = fs.create(&tmp_name)?;
    fs.append(tmp, movie.table.total_bytes())?;
    fs.remove(&movie.name)?;
    fs.rename(&tmp_name, &movie.name)?;
    Ok(Movie {
        name: movie.name.clone(),
        ino: tmp,
        table: movie.table.clone(),
        profile: movie.profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movie::record_movie;
    use crate::rates::StreamProfile;
    use cras_disk::geometry::DiskGeometry;
    use cras_ufs::MkfsParams;

    fn setup() -> (Ufs, Movie, Rng) {
        let geom = DiskGeometry::st32550n();
        let mut fs = Ufs::format(&geom, MkfsParams::tuned(&geom), 11);
        let mut rng = Rng::new(12);
        let m = record_movie(&mut fs, "m.mov", StreamProfile::mpeg1(), 30.0, &mut rng).unwrap();
        (fs, m, rng)
    }

    #[test]
    fn fragmenting_reduces_contiguity() {
        let (mut fs, m, mut rng) = setup();
        let before = fs.fragmentation(m.ino);
        assert!(before.contiguity > 0.99);
        let fragged = fragment_movie(&mut fs, &m, 1.0, &mut rng).unwrap();
        let after = fs.fragmentation(fragged.ino);
        assert!(
            after.contiguity < 0.5,
            "contiguity {} should collapse",
            after.contiguity
        );
        assert_eq!(fs.file_size(fragged.ino), m.table.total_bytes());
        assert_eq!(fs.lookup("m.mov").unwrap(), fragged.ino);
    }

    #[test]
    fn partial_severity_fragments_partially() {
        let (mut fs, m, mut rng) = setup();
        let fragged = fragment_movie(&mut fs, &m, 0.3, &mut rng).unwrap();
        let rep = fs.fragmentation(fragged.ino);
        assert!(rep.contiguity < 0.95);
        assert!(rep.contiguity > 0.4);
    }

    #[test]
    fn rearrange_restores_contiguity() {
        let (mut fs, m, mut rng) = setup();
        let fragged = fragment_movie(&mut fs, &m, 1.0, &mut rng).unwrap();
        let fixed = rearrange_movie(&mut fs, &fragged).unwrap();
        let rep = fs.fragmentation(fixed.ino);
        assert!(
            rep.contiguity > 0.99,
            "rearranged contiguity = {}",
            rep.contiguity
        );
        assert_eq!(fs.file_size(fixed.ino), m.table.total_bytes());
    }

    #[test]
    fn no_space_leak_across_fragment_cycle() {
        let (mut fs, m, mut rng) = setup();
        let free0 = fs.free_bytes();
        let fragged = fragment_movie(&mut fs, &m, 1.0, &mut rng).unwrap();
        let _fixed = rearrange_movie(&mut fs, &fragged).unwrap();
        // Same bytes stored, scratch removed: free space equal (sizes are
        // block-aligned here).
        assert_eq!(fs.free_bytes(), free0);
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn zero_severity_panics() {
        let (mut fs, m, mut rng) = setup();
        let _ = fragment_movie(&mut fs, &m, 0.0, &mut rng);
    }
}
