//! A QuickTime-flavoured container for the control information.
//!
//! "Usually, this timing information is stored in a control file separate
//! from the continuous media data file." The paper plays QuickTime
//! movies, whose `moov` atom carries per-sample size (`stsz`) and
//! duration (`stts`) tables. This module serializes a [`ChunkTable`] into
//! an atom-structured byte stream and parses it back, so control files
//! can be stored in the UFS next to their media files and opened the way
//! QtPlay opens a movie.
//!
//! Layout (all integers big-endian, atom = `u32 size | 4-byte type`):
//!
//! ```text
//! crsm                       container root
//! ├── shdr  version, chunk count
//! ├── stts  run-length (count, duration_ns) pairs
//! └── stsz  u32 sizes, one per chunk (or a single fixed size)
//! ```

use cras_sim::Duration;

use crate::chunk::ChunkTable;

/// Container parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainerError {
    /// Input ended inside an atom.
    Truncated,
    /// An atom's size field is impossible.
    BadAtomSize,
    /// The root is not a `crsm` atom.
    NotAContainer,
    /// A required atom is missing.
    MissingAtom(&'static str),
    /// Version unsupported.
    BadVersion(u8),
    /// Table lengths disagree.
    Inconsistent,
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::Truncated => write!(f, "truncated container"),
            ContainerError::BadAtomSize => write!(f, "bad atom size"),
            ContainerError::NotAContainer => write!(f, "not a crsm container"),
            ContainerError::MissingAtom(a) => write!(f, "missing {a} atom"),
            ContainerError::BadVersion(v) => write!(f, "unsupported version {v}"),
            ContainerError::Inconsistent => write!(f, "inconsistent tables"),
        }
    }
}

impl std::error::Error for ContainerError {}

const VERSION: u8 = 1;

fn push_atom(out: &mut Vec<u8>, kind: &[u8; 4], body: &[u8]) {
    let size = 8 + body.len() as u32;
    out.extend_from_slice(&size.to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(body);
}

/// Serializes a chunk table into `crsm` container bytes.
pub fn encode(table: &ChunkTable) -> Vec<u8> {
    // shdr: version + count.
    let mut shdr = Vec::with_capacity(5);
    shdr.push(VERSION);
    shdr.extend_from_slice(&(table.len() as u32).to_be_bytes());

    // stts: run-length encoded durations.
    let mut runs: Vec<(u32, u64)> = Vec::new();
    for c in table.chunks() {
        let d = c.duration.as_nanos();
        match runs.last_mut() {
            Some((n, dur)) if *dur == d => *n += 1,
            _ => runs.push((1, d)),
        }
    }
    let mut stts = Vec::with_capacity(4 + runs.len() * 12);
    stts.extend_from_slice(&(runs.len() as u32).to_be_bytes());
    for (n, d) in &runs {
        stts.extend_from_slice(&n.to_be_bytes());
        stts.extend_from_slice(&d.to_be_bytes());
    }

    // stsz: fixed-size shortcut (size != 0) or a full table.
    let fixed = table
        .chunks()
        .first()
        .map(|c| c.size)
        .filter(|&s| table.chunks().iter().all(|c| c.size == s));
    let mut stsz = Vec::new();
    match fixed {
        Some(s) if !table.is_empty() => stsz.extend_from_slice(&s.to_be_bytes()),
        _ => {
            stsz.extend_from_slice(&0u32.to_be_bytes());
            for c in table.chunks() {
                stsz.extend_from_slice(&c.size.to_be_bytes());
            }
        }
    }

    let mut body = Vec::new();
    push_atom(&mut body, b"shdr", &shdr);
    push_atom(&mut body, b"stts", &stts);
    push_atom(&mut body, b"stsz", &stsz);
    let mut out = Vec::with_capacity(8 + body.len());
    push_atom(&mut out, b"crsm", &body);
    out
}

struct Atom<'a> {
    kind: [u8; 4],
    body: &'a [u8],
}

fn parse_atoms(mut data: &[u8]) -> Result<Vec<Atom<'_>>, ContainerError> {
    let mut out = Vec::new();
    while !data.is_empty() {
        if data.len() < 8 {
            return Err(ContainerError::Truncated);
        }
        let size = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
        if size < 8 || size > data.len() {
            return Err(ContainerError::BadAtomSize);
        }
        let kind = [data[4], data[5], data[6], data[7]];
        out.push(Atom {
            kind,
            body: &data[8..size],
        });
        data = &data[size..];
    }
    Ok(out)
}

fn be_u32(b: &[u8]) -> Result<u32, ContainerError> {
    b.get(..4)
        .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
        .ok_or(ContainerError::Truncated)
}

fn be_u64(b: &[u8]) -> Result<u64, ContainerError> {
    b.get(..8)
        .map(|s| u64::from_be_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
        .ok_or(ContainerError::Truncated)
}

/// Parses `crsm` container bytes back into a chunk table.
pub fn decode(data: &[u8]) -> Result<ChunkTable, ContainerError> {
    let roots = parse_atoms(data)?;
    let root = roots
        .iter()
        .find(|a| &a.kind == b"crsm")
        .ok_or(ContainerError::NotAContainer)?;
    let atoms = parse_atoms(root.body)?;
    let find = |kind: &'static [u8; 4], name: &'static str| {
        atoms
            .iter()
            .find(|a| &a.kind == kind)
            .map(|a| a.body)
            .ok_or(ContainerError::MissingAtom(name))
    };
    let shdr = find(b"shdr", "shdr")?;
    let version = *shdr.first().ok_or(ContainerError::Truncated)?;
    if version != VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let count = be_u32(&shdr[1..])? as usize;

    // Durations.
    let stts = find(b"stts", "stts")?;
    let nruns = be_u32(stts)? as usize;
    let mut durations: Vec<Duration> = Vec::with_capacity(count);
    let mut off = 4;
    for _ in 0..nruns {
        let n = be_u32(&stts[off..])?;
        let d = be_u64(&stts[off + 4..])?;
        off += 12;
        for _ in 0..n {
            durations.push(Duration::from_nanos(d));
        }
    }
    if durations.len() != count {
        return Err(ContainerError::Inconsistent);
    }

    // Sizes.
    let stsz = find(b"stsz", "stsz")?;
    let fixed = be_u32(stsz)?;
    let mut sizes: Vec<u32> = Vec::with_capacity(count);
    if fixed != 0 {
        sizes.resize(count, fixed);
    } else {
        let mut off = 4;
        for _ in 0..count {
            sizes.push(be_u32(&stsz[off..])?);
            off += 4;
        }
    }

    let items: Vec<(Duration, u32)> = durations.into_iter().zip(sizes).collect();
    Ok(ChunkTable::from_durations_sizes(&items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movie::generate_chunks;
    use crate::rates::StreamProfile;
    use cras_sim::Rng;

    #[test]
    fn cbr_roundtrip_is_compact() {
        let mut rng = Rng::new(1);
        let t = generate_chunks(&StreamProfile::mpeg1(), 10.0, &mut rng);
        let bytes = encode(&t);
        // CBR: one stts run, fixed stsz => tiny control file.
        assert!(bytes.len() < 100, "control file {} bytes", bytes.len());
        let back = decode(&bytes).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.total_bytes(), t.total_bytes());
        assert_eq!(back.total_duration(), t.total_duration());
        assert_eq!(back.chunks(), t.chunks());
    }

    #[test]
    fn vbr_roundtrip_exact() {
        let mut rng = Rng::new(2);
        let t = generate_chunks(&StreamProfile::jpeg_vbr(187_500.0), 5.0, &mut rng);
        let back = decode(&encode(&t)).unwrap();
        assert_eq!(back.chunks(), t.chunks());
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = ChunkTable::default();
        let back = decode(&encode(&t)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncation_detected() {
        let mut rng = Rng::new(3);
        let t = generate_chunks(&StreamProfile::mpeg1(), 1.0, &mut rng);
        let bytes = encode(&t);
        for cut in [1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(
            decode(b"not a movie at all"),
            Err(ContainerError::BadAtomSize)
        );
        // Valid atom structure but wrong root type.
        let mut out = Vec::new();
        push_atom(&mut out, b"free", &[]);
        assert_eq!(decode(&out), Err(ContainerError::NotAContainer));
    }

    #[test]
    fn bad_version_rejected() {
        let mut rng = Rng::new(4);
        let t = generate_chunks(&StreamProfile::mpeg1(), 1.0, &mut rng);
        let mut bytes = encode(&t);
        // shdr version byte lives at root(8) + atom hdr(8) offset.
        bytes[16] = 99;
        assert_eq!(decode(&bytes), Err(ContainerError::BadVersion(99)));
    }
}
