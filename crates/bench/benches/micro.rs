//! Micro-benchmarks of the hot paths: the admission test, C-SCAN queue
//! operations, the time-driven buffer, seek-model evaluation, the event
//! engine, and interval planning. Runs on the in-tree
//! `cras_bench::timer` harness (`cargo bench --bench micro`).

use std::hint::black_box;

use cras_bench::timer::bench;
use cras_core::{Admission, AdmissionModel, CrasServer, ServerConfig, StreamParams};
use cras_core::{BufferedChunk, TimeDrivenBuffer};
use cras_disk::calibrate::DiskParams;
use cras_disk::cscan::CScanQueue;
use cras_disk::SeekModel;
use cras_media::StreamProfile;
use cras_sim::{Duration, Engine, Instant, Rng};
use cras_ufs::Extent;

fn bench_admission() {
    let adm = Admission::new(DiskParams::paper_table4(), AdmissionModel::Paper);
    let streams = vec![StreamParams::new(187_500.0, 6_250.0); 20];
    bench("admission/calculated_io_time_20_streams", || {
        black_box(adm.calculated_io_time(0.5, black_box(&streams)));
    });
    bench("admission/full_admit_20_streams", || {
        let _ = black_box(adm.admit(0.5, black_box(&streams), 1 << 30));
    });
    let proto = StreamParams::new(187_500.0, 6_250.0);
    bench("admission/capacity_search", || {
        black_box(adm.capacity(0.5, proto, 1 << 30, 50));
    });
}

fn bench_cscan() {
    let mut rng = Rng::new(7);
    let cyls: Vec<u32> = (0..256).map(|_| rng.below(3510) as u32).collect();
    bench("cscan/push_pop_256", || {
        let mut q = CScanQueue::new();
        for &cy in &cyls {
            q.push(cy, Instant::ZERO, cy);
        }
        let mut head = 0;
        while let Some(p) = q.pop_next(head) {
            head = p.cyl;
            black_box(p.item);
        }
    });
}

fn bench_tdbuffer() {
    bench("tdbuffer/put_get_discard_cycle", || {
        let mut buf = TimeDrivenBuffer::new(1 << 20, Duration::from_millis(100));
        for i in 0..60u32 {
            buf.put(
                BufferedChunk {
                    index: i,
                    timestamp: Duration::from_millis(i as u64 * 33),
                    duration: Duration::from_millis(33),
                    size: 6_250,
                    posted_at: Instant::ZERO,
                },
                Duration::from_millis(i as u64 * 16),
            );
            black_box(buf.get(Duration::from_millis(i as u64 * 20)));
        }
    });
}

fn bench_seek() {
    let measured = SeekModel::st32550n_measured();
    let linear = SeekModel::st32550n_linear(3510);
    let mut d = 1u32;
    bench("seek/measured_eval", || {
        d = (d * 73 + 11) % 3510;
        black_box(measured.time_secs(black_box(d)));
    });
    let samples: Vec<(u32, f64)> = (1..=64)
        .map(|i| (i * 50, linear.time_secs(i * 50)))
        .collect();
    bench("seek/linear_fit_64_samples", || {
        black_box(SeekModel::linear_fit(black_box(&samples)));
    });
}

fn bench_engine() {
    bench("engine/schedule_pop_1000", || {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..1000u32 {
            e.schedule_after(Duration::from_micros((i * 37 % 997) as u64 + 1), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = e.pop() {
            acc += v as u64;
        }
        black_box(acc);
    });
}

fn bench_interval_plan() {
    // A server with 10 running streams planning one interval.
    let setup = || {
        let mut srv = CrasServer::new(DiskParams::paper_table4(), ServerConfig::default());
        let mut rng = Rng::new(3);
        for i in 0..10u64 {
            let table = cras_media::generate_chunks(&StreamProfile::mpeg1(), 30.0, &mut rng);
            let nblocks = table.total_bytes().div_ceil(512) as u32;
            let id = srv
                .open(
                    &format!("m{i}"),
                    table,
                    vec![Extent {
                        file_offset: 0,
                        disk_block: i * 400_000,
                        nblocks,
                    }],
                )
                .expect("10 streams fit in ample memory");
            srv.start(id, Instant::ZERO);
        }
        srv
    };
    bench("server/interval_tick_10_streams", || {
        let mut srv = setup();
        for k in 0..4u64 {
            let now = Instant::ZERO + Duration::from_millis(500) * k;
            let rep = srv.interval_tick(now);
            for r in &rep.reqs {
                srv.io_done(r.id, now + Duration::from_millis(100));
            }
            black_box(rep.reqs.len());
        }
    });
}

fn main() {
    bench_admission();
    bench_cscan();
    bench_tdbuffer();
    bench_seek();
    bench_engine();
    bench_interval_plan();
}
