//! Criterion wrappers around reduced-scale versions of every paper
//! figure, so `cargo bench` exercises the entire regeneration harness.
//! (Full-resolution figures come from the `cras-bench` binaries.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cras_sim::Duration;
use cras_workload as wl;

fn bench_fig6(c: &mut Criterion) {
    let cfg = wl::fig6::Fig6Config {
        max_streams: 5,
        step: 4,
        measure: Duration::from_secs(5),
        seed: 61,
    };
    c.bench_function("figures/fig6_reduced", |b| {
        b.iter(|| black_box(wl::fig6::run(&cfg)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let cfg = wl::fig7::Fig7Config {
        trace: Duration::from_secs(6),
        ..wl::fig7::Fig7Config::default()
    };
    c.bench_function("figures/fig7_reduced", |b| {
        b.iter(|| black_box(wl::fig7::run(&cfg)))
    });
}

fn bench_fig8_fig9(c: &mut Criterion) {
    let mut f8 = wl::admission_acc::AccuracyConfig::fig8();
    f8.max_streams = 4;
    f8.step = 3;
    f8.measure = Duration::from_secs(5);
    c.bench_function("figures/fig8_reduced", |b| {
        b.iter(|| black_box(wl::admission_acc::run(&f8)))
    });
    let mut f9 = wl::admission_acc::AccuracyConfig::fig9();
    f9.max_streams = 2;
    f9.measure = Duration::from_secs(5);
    c.bench_function("figures/fig9_reduced", |b| {
        b.iter(|| black_box(wl::admission_acc::run(&f9)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let cfg = wl::fig10::Fig10Config {
        trace: Duration::from_secs(6),
        ..wl::fig10::Fig10Config::default()
    };
    c.bench_function("figures/fig10_reduced", |b| {
        b.iter(|| black_box(wl::fig10::run(&cfg)))
    });
}

fn bench_fig12_table4(c: &mut Criterion) {
    c.bench_function("figures/fig12_table4_calibration", |b| {
        b.iter(|| {
            let cal = wl::fig12::run_calibration();
            black_box((wl::fig12::fig12(&cal), wl::fig12::table4(&cal)))
        })
    });
}

fn bench_tables_and_ablations(c: &mut Criterion) {
    let cal = wl::fig12::run_calibration();
    let params = cal.params;
    c.bench_function("figures/table3_capacity", |b| {
        b.iter(|| black_box((wl::capacity::table3(params), wl::capacity::figure(params))))
    });
    c.bench_function("figures/ablate", |b| {
        b.iter(|| black_box(wl::ablate::run(params)))
    });
    c.bench_function("figures/frag_reduced", |b| {
        b.iter(|| black_box(wl::frag::run(4, Duration::from_secs(5), 13)))
    });
    c.bench_function("figures/vbr_reduced", |b| {
        b.iter(|| black_box(wl::vbr::run(Duration::from_secs(5), 14)))
    });
    c.bench_function("figures/qos_reduced", |b| {
        b.iter(|| {
            black_box(wl::qos::run(
                Duration::from_secs(8),
                Duration::from_secs(4),
                15,
            ))
        })
    });
    c.bench_function("figures/disk_sched_reduced", |b| {
        b.iter(|| black_box(wl::disk_sched::run(150, 8, 16)))
    });
    c.bench_function("figures/faults_reduced", |b| {
        b.iter(|| {
            black_box(wl::faults::sweep(
                &[0.0, 0.2],
                4,
                Duration::from_secs(5),
                17,
            ))
        })
    });
    c.bench_function("figures/multi_reduced", |b| {
        b.iter(|| black_box(wl::multi::run(Duration::from_secs(6), 18)))
    });
    c.bench_function("figures/editing_reduced", |b| {
        b.iter(|| black_box(wl::editing::run(Duration::from_secs(6), 19)))
    });
    c.bench_function("figures/measured_capacity_reduced", |b| {
        b.iter(|| {
            black_box(wl::measured_capacity::validate(
                &[0.5],
                2,
                Duration::from_secs(5),
                20,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6, bench_fig7, bench_fig8_fig9, bench_fig10,
              bench_fig12_table4, bench_tables_and_ablations
}
criterion_main!(benches);
