//! Reduced-scale timings of every paper figure, so `cargo bench`
//! exercises the entire regeneration harness. (Full-resolution figures
//! come from the `cras-bench` binaries.)

use std::hint::black_box;

use cras_bench::timer::bench;
use cras_sim::Duration;
use cras_workload as wl;

fn bench_fig6() {
    let cfg = wl::fig6::Fig6Config {
        max_streams: 5,
        step: 4,
        measure: Duration::from_secs(5),
        seed: 61,
    };
    bench("figures/fig6_reduced", || {
        black_box(wl::fig6::run(&cfg));
    });
}

fn bench_fig7() {
    let cfg = wl::fig7::Fig7Config {
        trace: Duration::from_secs(6),
        ..wl::fig7::Fig7Config::default()
    };
    bench("figures/fig7_reduced", || {
        black_box(wl::fig7::run(&cfg));
    });
}

fn bench_fig8_fig9() {
    let mut f8 = wl::admission_acc::AccuracyConfig::fig8();
    f8.max_streams = 4;
    f8.step = 3;
    f8.measure = Duration::from_secs(5);
    bench("figures/fig8_reduced", || {
        black_box(wl::admission_acc::run(&f8));
    });
    let mut f9 = wl::admission_acc::AccuracyConfig::fig9();
    f9.max_streams = 2;
    f9.measure = Duration::from_secs(5);
    bench("figures/fig9_reduced", || {
        black_box(wl::admission_acc::run(&f9));
    });
}

fn bench_fig10() {
    let cfg = wl::fig10::Fig10Config {
        trace: Duration::from_secs(6),
        ..wl::fig10::Fig10Config::default()
    };
    bench("figures/fig10_reduced", || {
        black_box(wl::fig10::run(&cfg));
    });
}

fn bench_fig12_table4() {
    bench("figures/fig12_table4_calibration", || {
        let cal = wl::fig12::run_calibration();
        black_box((wl::fig12::fig12(&cal), wl::fig12::table4(&cal)));
    });
}

fn bench_tables_and_ablations() {
    let cal = wl::fig12::run_calibration();
    let params = cal.params;
    bench("figures/table3_capacity", || {
        black_box((wl::capacity::table3(params), wl::capacity::figure(params)));
    });
    bench("figures/ablate", || {
        black_box(wl::ablate::run(params));
    });
    bench("figures/frag_reduced", || {
        black_box(wl::frag::run(4, Duration::from_secs(5), 13));
    });
    bench("figures/vbr_reduced", || {
        black_box(wl::vbr::run(Duration::from_secs(5), 14));
    });
    bench("figures/qos_reduced", || {
        black_box(wl::qos::run(
            Duration::from_secs(8),
            Duration::from_secs(4),
            15,
        ));
    });
    bench("figures/disk_sched_reduced", || {
        black_box(wl::disk_sched::run(150, 8, 16));
    });
    bench("figures/faults_reduced", || {
        black_box(wl::faults::sweep(
            &[0.0, 0.2],
            4,
            Duration::from_secs(5),
            17,
        ));
    });
    bench("figures/multi_reduced", || {
        black_box(wl::multi::run(Duration::from_secs(6), 18));
    });
    bench("figures/editing_reduced", || {
        black_box(wl::editing::run(Duration::from_secs(6), 19));
    });
    bench("figures/measured_capacity_reduced", || {
        black_box(wl::measured_capacity::validate(
            &[0.5],
            2,
            Duration::from_secs(5),
            20,
        ));
    });
    bench("figures/capacity_scaling_reduced", || {
        black_box(wl::capacity_scaling::run(
            &[1, 2],
            Duration::from_secs(4),
            21,
        ));
    });
}

fn main() {
    bench_fig6();
    bench_fig7();
    bench_fig8_fig9();
    bench_fig10();
    bench_fig12_table4();
    bench_tables_and_ablations();
}
