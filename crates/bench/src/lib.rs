//! `cras-bench` — the regeneration harness.
//!
//! One binary per evaluation artifact (`cargo run -p cras-bench --release
//! --bin fig6` etc.); each prints the paper-style rows/series and writes
//! JSON under `results/`. Micro-benchmarks live in `benches/` on the
//! in-tree [`timer`] harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod timer;

use std::fs;
use std::path::Path;

/// Writes a JSON artifact under `results/`, creating the directory.
///
/// # Panics
///
/// Panics on I/O errors — the harness should fail loudly.
pub fn write_result(name: &str, json: &str) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, json).expect("write result file");
    eprintln!("wrote {}", path.display());
}

/// Returns true when `--quick` was passed (reduced sweeps for smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_mode_defaults_off() {
        assert!(!super::quick_mode());
    }
}
