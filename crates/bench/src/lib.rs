//! `cras-bench` — the regeneration harness.
//!
//! One binary per evaluation artifact (`cargo run -p cras-bench --release
//! --bin fig6` etc.); each prints the paper-style rows/series and writes
//! JSON under `results/`. Micro-benchmarks live in `benches/` on the
//! in-tree [`timer`] harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod timer;

use std::fs;
use std::path::Path;

/// Writes a JSON artifact under `results/`, creating the directory.
///
/// # Panics
///
/// Panics on I/O errors — the harness should fail loudly.
pub fn write_result(name: &str, json: &str) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, json).expect("write result file");
    eprintln!("wrote {}", path.display());
}

/// Returns true when `--quick` was passed (reduced sweeps for smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Returns true when `--check` was passed (compare against committed
/// baselines instead of rewriting them).
pub fn check_mode() -> bool {
    std::env::args().any(|a| a == "--check")
}

/// Returns true when `--strict` was passed alongside `--check`: drift
/// past tolerance should exit nonzero instead of merely warning. CI
/// stays warn-only; `--strict` is for local pre-merge runs and
/// trajectory tooling that wants a hard signal.
pub fn strict_mode() -> bool {
    std::env::args().any(|a| a == "--strict")
}

/// Writes a perf-trajectory artifact: `BENCH_<name>.json` at the repo
/// root (where trajectory tooling looks) and a copy under `results/`.
/// The payload is wrapped as `{"quick":…,"data":…}` so a `--check` run
/// can refuse to compare across sweep modes.
///
/// # Panics
///
/// Panics on I/O errors — the harness should fail loudly.
pub fn write_bench(name: &str, json: &str, quick: bool) {
    let wrapped = format!("{{\"quick\":{quick},\"data\":{json}}}");
    let file = format!("BENCH_{name}.json");
    fs::write(&file, &wrapped).expect("write BENCH artifact");
    eprintln!("wrote {file}");
    write_result(&format!("BENCH_{name}"), &wrapped);
}

/// Pulls every numeric token out of a JSON string, in order. Good
/// enough for baseline comparison of our hand-rolled artifacts (no
/// serde dependency): the emitters are deterministic, so two runs of
/// the same code produce tokens in the same order.
fn numeric_tokens(json: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_digit() || (c == '-' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) {
            let start = i;
            i += 1;
            while i < bytes.len()
                && matches!(bytes[i] as char, '0'..='9' | '.' | 'e' | 'E' | '-' | '+')
            {
                i += 1;
            }
            if let Ok(v) = json[start..i].parse() {
                out.push(v);
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Comparison of a freshly generated artifact against the committed
/// `BENCH_<name>.json` baseline: numeric tokens are compared pairwise
/// and the worst relative drift is reported. Warn-only by default — CI
/// machines are too noisy for a hard gate; the check exists so a
/// regression shows up in the log the day it lands. Returns `false`
/// when the comparison found drift past tolerance or a shape change,
/// so `--strict` callers (see [`strict_mode`]) can turn the warning
/// into a nonzero exit; an absent baseline or a sweep-mode mismatch
/// returns `true` (nothing to compare against is not a regression).
pub fn check_bench(name: &str, json_now: &str, quick: bool) -> bool {
    const TOLERANCE: f64 = 0.20;
    let file = format!("BENCH_{name}.json");
    let baseline = match fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            println!("WARN: {name}: no committed {file} to check against ({e})");
            return true;
        }
    };
    let mode = format!("{{\"quick\":{quick},");
    if !baseline.starts_with(&mode) {
        println!("WARN: {name}: baseline was generated in a different sweep mode; skipping");
        return true;
    }
    let data = &baseline[mode.len()..];
    let base = numeric_tokens(data);
    let now = numeric_tokens(json_now);
    if base.len() != now.len() {
        println!(
            "WARN: {name}: artifact shape changed ({} numeric fields vs baseline {})",
            now.len(),
            base.len()
        );
        return false;
    }
    let worst = base
        .iter()
        .zip(&now)
        .map(|(b, n)| (n - b).abs() / b.abs().max(1e-9))
        .fold(0.0f64, f64::max);
    if worst > TOLERANCE {
        println!(
            "WARN: {name}: worst field drift {:+.0}% — outside +/-{:.0}%",
            worst * 100.0,
            TOLERANCE * 100.0
        );
        false
    } else {
        println!("OK:   {name}: worst field drift {:+.1}%", worst * 100.0);
        true
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_mode_defaults_off() {
        assert!(!super::quick_mode());
    }
}
