//! Regenerates the §3.1 capacity claim: streams vs initial delay.

use cras_bench::write_result;
use cras_workload::capacity::figure;
use cras_workload::fig12::run_calibration;

fn main() {
    let cal = run_calibration();
    let fig = figure(cal.params);
    println!("{}", fig.render());
    println!("# paper claim: 3 s initial delay supports >25 MPEG1 streams (~70% of bandwidth)");
    write_result("capacity", &fig.to_json());
}
