//! Regenerates the Figure 5 deployment-cost ablation.

use cras_bench::write_result;
use cras_workload::deploy::run;

fn main() {
    let (t, _costs) = run(30.0);
    println!("{}", t.render());
    write_result("deploy", &t.to_json());
}
