//! Regenerates the admission-model ablation.

use cras_bench::write_result;
use cras_workload::ablate::run;
use cras_workload::fig12::run_calibration;

fn main() {
    let cal = run_calibration();
    let (t, _points) = run(cal.params);
    println!("{}", t.render());
    write_result("ablate", &t.to_json());
}
