//! Regenerates Figure 12: measured seek curve and its linear fit.

use cras_bench::write_result;
use cras_workload::fig12::{fig12, run_calibration};

fn main() {
    let cal = run_calibration();
    let fig = fig12(&cal);
    println!("{}", fig.render());
    println!(
        "# linear fit: alpha = {:.3} us/cyl, beta = {:.3} ms",
        cal.fit.0 * 1e6,
        cal.fit.1 * 1e3
    );
    write_result("fig12", &fig.to_json());
}
