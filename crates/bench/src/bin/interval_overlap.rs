//! Regenerates the cross-volume interval-overlap experiment: pipelined
//! per-spindle issue vs the serial one-volume-at-a-time baseline.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_sys::IssueMode;
use cras_workload::interval_overlap::sweep;

fn main() {
    let (counts, measure): (&[usize], Duration) = if quick_mode() {
        (&[8], Duration::from_secs(12))
    } else {
        (&[4, 8, 12], Duration::from_secs(20))
    };
    let (t, f, outs) = sweep(counts, 4, measure, 0x0E);
    println!("{}", t.render());
    println!("{}", f.render());
    write_result("interval_overlap", &t.to_json());
    write_result("interval_overlap_span", &f.to_json());

    // Smoke assertions: the pipelined path must track the slowest
    // spindle (not the sum), keep every deadline, and the issue mode
    // must not perturb admission. The serial baseline is *allowed* to
    // miss deadlines at heavy load — serializing the volumes stretches
    // the effective interval toward the per-volume sum, which is the
    // bug the pipelined path fixes.
    for o in outs.iter().filter(|o| o.mode == IssueMode::Pipelined) {
        assert_eq!(o.dropped, 0, "dropped frames: {o:?}");
        assert_eq!(o.overruns, 0, "deadline warnings: {o:?}");
        assert!(
            o.span_over_max <= 1.15,
            "pipelined interval span strayed from the slowest spindle: {o:?}"
        );
        assert!(
            o.span_over_calc <= 1.0,
            "pipelined span exceeded the admission bound: {o:?}"
        );
    }
    for pair in outs.chunks(2) {
        let [p, s] = pair else { unreachable!() };
        assert_eq!(
            p.admitted, s.admitted,
            "issue mode changed the admission decision: {p:?} vs {s:?}"
        );
    }
}
