//! Regenerates the interval-cache sharing experiment.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::cache_sharing::sweep;

fn main() {
    let quick = quick_mode();
    let budgets: &[u64] = if quick {
        &[0, 64 << 20]
    } else {
        &[0, 16 << 20, 32 << 20, 64 << 20, 128 << 20]
    };
    let (requested, measure) = if quick {
        (24, Duration::from_secs(10))
    } else {
        (30, Duration::from_secs(20))
    };
    let (t, f, outs) = sweep(
        budgets,
        requested,
        10,
        Duration::from_millis(1500),
        measure,
        0xCA5E,
    );
    println!("{}", t.render());
    println!("{}", f.render());
    write_result("cache_sharing", &t.to_json());
    write_result("cache_sharing_admitted", &f.to_json());
    // Smoke contract for CI: the cache admitted extra viewers and every
    // admitted stream kept every deadline.
    let base = outs.first().expect("budget 0 ran");
    let best = outs.last().expect("budgeted run");
    assert_eq!(base.cache_admitted, 0, "budget 0 must be the baseline");
    assert!(
        best.cache_admitted > 0 && best.admitted > base.admitted,
        "cache never admitted past the disk bound: {outs:?}"
    );
    assert!(
        outs.iter().all(|o| o.dropped == 0 && o.overruns == 0),
        "deadline violations: {outs:?}"
    );
}
