//! Regenerates the transient-fault-injection ablation.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::faults::sweep;

fn main() {
    let measure = if quick_mode() {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(20)
    };
    let (t, _outs) = sweep(&[0.0, 0.01, 0.05, 0.2, 0.6], 8, measure, 0xFA17);
    println!("{}", t.render());
    write_result("faults", &t.to_json());
}
