//! Regenerates the §2.6 multiple-servers experiment.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::multi::run;

fn main() {
    let measure = if quick_mode() {
        Duration::from_secs(12)
    } else {
        Duration::from_secs(30)
    };
    let (t, _one, _two) = run(measure, 0x2C25);
    println!("{}", t.render());
    write_result("multi", &t.to_json());
}
