//! Emits a Markdown summary of every artifact under `results/` — the
//! mechanical cross-check for EXPERIMENTS.md.

use std::fs;

use cras_bench::report::summarize;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let Ok(entries) = fs::read_dir(&dir) else {
        eprintln!("no {dir}/ directory; run the figure binaries first");
        std::process::exit(1);
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    println!("# Result summary ({} artifacts)\n", paths.len());
    for p in paths {
        let Ok(text) = fs::read_to_string(&p) else {
            continue;
        };
        let Ok(v) = cras_sim::json::parse(&text) else {
            eprintln!("skipping unparsable {}", p.display());
            continue;
        };
        match summarize(&v) {
            Some(s) => println!("{s}"),
            None => eprintln!("skipping unknown shape {}", p.display()),
        }
    }
}
