//! Validates the admitted capacity by simulation at several intervals.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::measured_capacity::validate;

fn main() {
    let (intervals, measure): (&[f64], _) = if quick_mode() {
        (&[0.5], Duration::from_secs(10))
    } else {
        (&[0.25, 0.5, 1.0, 1.5], Duration::from_secs(20))
    };
    let (t, _points) = validate(intervals, 3, measure, 0xCA11);
    println!("{}", t.render());
    write_result("measured_capacity", &t.to_json());
}
