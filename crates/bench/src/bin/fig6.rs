//! Regenerates Figure 6: CRAS vs UFS throughput, 1–25 streams, ±load.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::fig6::{run, Fig6Config};

fn main() {
    let cfg = if quick_mode() {
        Fig6Config {
            max_streams: 13,
            step: 4,
            measure: Duration::from_secs(10),
            ..Fig6Config::default()
        }
    } else {
        Fig6Config::default()
    };
    let fig = run(&cfg);
    println!("{}", fig.render());
    let disk_rate = 6.5e6;
    for s in &fig.series {
        if let Some(y) = s.last_y() {
            println!(
                "# {}: final {:.2} MB/s = {:.0}% of disk rate",
                s.name,
                y / 1e6,
                100.0 * y / disk_rate
            );
        }
    }
    write_result("fig6", &fig.to_json());
}
