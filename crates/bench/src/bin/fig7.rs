//! Regenerates Figure 7: per-frame delay under background disk load.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::fig7::{run, Fig7Config};

fn main() {
    let cfg = if quick_mode() {
        Fig7Config {
            trace: Duration::from_secs(15),
            ..Fig7Config::default()
        }
    } else {
        Fig7Config::default()
    };
    let (fig, cras, ufs) = run(&cfg);
    println!("{}", fig.render());
    println!("# CRAS delay: mean {:.4}s max {:.4}s", cras.0, cras.1);
    println!("# UFS  delay: mean {:.4}s max {:.4}s", ufs.0, ufs.1);
    write_result("fig7", &fig.to_json());
}
