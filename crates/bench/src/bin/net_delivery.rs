//! Regenerates the NPS-style delivery experiment (DESIGN §18): a
//! joined audience plus solo titles on one shared 10 Mbps Ethernet,
//! run as unicast, multicast, slow-client backpressure, and a
//! deterministic loss sweep with NAK-driven retransmission.
//!
//! ```text
//! cargo run --release -p cras-bench --bin net_delivery [-- --quick] [-- --check [--strict]]
//! ```
//!
//! With `--check`, the run is compared against the committed
//! `BENCH_net_delivery.json` at the repo root — warn-only, so a
//! regression shows up in the log the day it lands without gating
//! noisy CI machines. Adding `--strict` turns drift past ±20% into a
//! nonzero exit for local pre-merge runs.

use cras_bench::{check_bench, check_mode, quick_mode, strict_mode, write_bench};
use cras_sim::Duration;
use cras_workload::net_delivery::{points_json, suite, NetParams};

fn main() {
    let quick = quick_mode();
    let p = NetParams {
        measure: if quick {
            Duration::from_secs(12)
        } else {
            Duration::from_secs(30)
        },
        ..NetParams::default()
    };
    let (t, f, outs) = suite(&p);
    println!("{}", t.render());
    println!("{}", f.render());

    let json = points_json(&outs);
    if check_mode() {
        if !check_bench("net_delivery", &json, quick) && strict_mode() {
            std::process::exit(1);
        }
        return;
    }

    // The experiment's acceptance bar, enforced on regeneration.
    let [uni, multi, slow, clean, loss1, loss4] = outs.as_slice() else {
        panic!("expected six outcomes, got {} modes", outs.len());
    };
    assert!(
        uni.late > 0,
        "oversubscribed unicast never missed a deadline: {uni:?}"
    );
    assert!(
        multi.link_bytes < uni.link_bytes,
        "multicast did not cut wire bytes: {} vs {}",
        multi.link_bytes,
        uni.link_bytes
    );
    assert_eq!(
        multi.late, 0,
        "multicast added late frames on an uncontended wire: {multi:?}"
    );
    let sc = slow.slow_client.expect("slow mode has a slow client");
    for s in &slow.per_session {
        if s.client == sc {
            assert!(s.parks > 0, "slow drain never parked: {s:?}");
        } else {
            assert_eq!(s.parks, 0, "victim session parked: {s:?}");
            assert_eq!(s.late, 0, "victim session went late: {s:?}");
        }
    }
    assert_eq!(clean.naks, 0, "zero-probability injector NAKed: {clean:?}");
    assert_eq!(clean.late, 0);
    for o in [loss1, loss4] {
        assert!(o.retransmits > 0, "loss never repaired: {o:?}");
        assert!(
            o.late * 50 <= o.played,
            "{}: late {} of {} played — retransmission is not repairing",
            o.mode,
            o.late,
            o.played
        );
    }
    write_bench("net_delivery", &json, quick);
}
