//! Regenerates the catalog-scaling experiment (DESIGN §16): a fixed
//! 2-shard × 2-volume cluster, a 64-title Zipf(1) catalog, the viewer
//! count swept three orders of magnitude. Admitted viewers must keep
//! growing while the peak disk-charged stream count stays pinned near
//! the measured spindle bound — the popularity-aware cache manager
//! (prefix residency, batched joins, interval chaining, gateway retry
//! queue) carries the difference in memory.
//!
//! ```text
//! cargo run --release -p cras-bench --bin catalog_scaling [-- --quick] [-- --check]
//! ```
//!
//! With `--check`, the run is compared against the committed
//! `BENCH_catalog_scaling.json` at the repo root: numeric fields are
//! compared pairwise and drift past ±20% prints a `WARN` line.
//! Warn-only, like the `sim_speed` check — it exists so a capacity
//! regression shows up in the log the day it lands, not to gate noisy
//! CI machines.

use cras_bench::{check_bench, check_mode, quick_mode, write_bench};
use cras_workload::catalog_scaling::{bench_shape, points_json, spindle_bound, sweep};

fn main() {
    let quick = quick_mode();
    let check = check_mode();
    let (p, counts) = bench_shape(quick);
    let bound = spindle_bound(&p);
    let (t, f, outs) = sweep(&p, &counts);
    println!("{}", t.render());
    println!("{}", f.render());

    let json = points_json(bound, &outs);
    if check {
        check_bench("catalog_scaling", &json, quick);
        return;
    }

    // The experiment's acceptance bar, enforced on regeneration.
    let first = outs.first().expect("sweep is nonempty");
    let last = outs.last().expect("sweep is nonempty");
    for o in &outs {
        assert_eq!(o.dropped, 0, "dropped frames at {} viewers", o.requested);
        assert!(
            o.peak_disk_streams as f64 <= 1.2 * bound as f64,
            "disk streams past the spindle bound at {} viewers",
            o.requested
        );
    }
    assert!(
        last.admitted as f64 >= 5.0 * first.admitted as f64,
        "admitted viewers failed to grow 5x: {} -> {}",
        first.admitted,
        last.admitted
    );
    assert!(
        (last.peak_disk_streams as f64) >= 0.8 * bound as f64,
        "the sweep never loaded the spindles: peak {} vs bound {bound}",
        last.peak_disk_streams
    );
    write_bench("catalog_scaling", &json, quick);
}
