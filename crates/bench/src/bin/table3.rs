//! Regenerates Tables 1/3: admission parameters with resolved values,
//! plus the §2.1 server-memory claim.

use cras_bench::write_result;
use cras_workload::capacity::table3;
use cras_workload::fig12::run_calibration;

fn main() {
    let cal = run_calibration();
    let t = table3(cal.params);
    println!("{}", t.render());
    write_result("table3", &t.to_json());
}
