//! Regenerates the rotating-parity failover experiment.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::parity_failover::sweep;

fn main() {
    let (counts, measure): (&[usize], Duration) = if quick_mode() {
        (&[2, 4], Duration::from_secs(10))
    } else {
        (&[2, 4, 8, 12], Duration::from_secs(20))
    };
    let (t, f, _outs) = sweep(counts, 4, measure, 0x9417);
    println!("{}", t.render());
    println!("{}", f.render());
    write_result("parity_failover", &t.to_json());
    write_result("parity_failover_rebuild", &f.to_json());
}
