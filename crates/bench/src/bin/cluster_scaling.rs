//! Regenerates the sharded-cluster scaling experiment: a 4-shard ×
//! 4-volume gateway over a 1000-title Zipf catalog, viewers swept, the
//! busiest shard killed mid-run.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::cluster_scaling::{sweep, ClusterParams};

fn main() {
    let (mut p, counts): (ClusterParams, &[usize]) = if quick_mode() {
        let mut p = ClusterParams::standard();
        p.shards = 3;
        p.volumes = 2;
        p.titles = 120;
        p.stagger = Duration::from_millis(300);
        p.measure = Duration::from_secs(12);
        (p, &[160])
    } else {
        (ClusterParams::standard(), &[240, 480, 960])
    };
    p.stepping = cras_cluster::Stepping::Lockstep;
    let (t, f, outs) = sweep(&p, counts);
    println!("{}", t.render());
    println!("{}", f.render());
    for o in &outs {
        assert_eq!(o.dropped, 0, "dropped frames at {} viewers", o.requested);
        assert_eq!(
            o.overruns, 0,
            "deadline warnings at {} viewers",
            o.requested
        );
    }
    write_result("cluster_scaling", &t.to_json());
    write_result("cluster_scaling_served", &f.to_json());
}
