//! Regenerates Figure 10: fixed priority vs round robin under CPU load.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::fig10::{run, Fig10Config};

fn main() {
    let cfg = if quick_mode() {
        Fig10Config {
            trace: Duration::from_secs(15),
            ..Fig10Config::default()
        }
    } else {
        Fig10Config::default()
    };
    let (fig, fp, rr) = run(&cfg);
    println!("{}", fig.render());
    println!("# FixedPriority delay: mean {:.4}s max {:.4}s", fp.0, fp.1);
    println!("# RoundRobin    delay: mean {:.4}s max {:.4}s", rr.0, rr.1);
    write_result("fig10", &fig.to_json());
}
