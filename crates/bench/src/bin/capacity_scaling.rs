//! Regenerates the capacity-scaling artifact: admitted streams vs number
//! of volumes under round-robin and striped placement.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::capacity_scaling::run;

fn main() {
    let measure = Duration::from_secs(if quick_mode() { 6 } else { 12 });
    let (fig, points) = run(&[1, 2, 4], measure, 0xCA9A);
    println!("{}", fig.render());
    for p in &points {
        println!(
            "# N={}: round-robin={} striped={} drops={} warnings={}",
            p.volumes,
            p.admitted_round_robin,
            p.admitted_striped,
            p.dropped_at_admitted,
            p.overruns
        );
    }
    write_result("capacity_scaling", &fig.to_json());
}
