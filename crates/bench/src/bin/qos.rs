//! Regenerates the dynamic-QOS rate-change scenario.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::qos::run;

fn main() {
    let (total, switch) = if quick_mode() {
        (Duration::from_secs(12), Duration::from_secs(6))
    } else {
        (Duration::from_secs(30), Duration::from_secs(15))
    };
    let (t, _out) = run(total, switch, 0x05);
    println!("{}", t.render());
    write_result("qos", &t.to_json());
}
