//! Regenerates the editing-while-playing experiment.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::editing::run;

fn main() {
    let measure = if quick_mode() {
        Duration::from_secs(12)
    } else {
        Duration::from_secs(30)
    };
    let (t, _cras, _ufs) = run(measure, 0xED17);
    println!("{}", t.render());
    write_result("editing", &t.to_json());
}
