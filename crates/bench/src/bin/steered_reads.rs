//! Regenerates the coded-read steering experiment (DESIGN §17): parity
//! streams over one band, one spindle skewed by pinned `cat` traffic
//! and retry stalls, played with steering off then on.
//!
//! ```text
//! cargo run --release -p cras-bench --bin steered_reads [-- --quick] [-- --check [--strict]]
//! ```
//!
//! With `--check`, the run is compared against the committed
//! `BENCH_steered_reads.json` at the repo root — warn-only, so a
//! regression shows up in the log the day it lands without gating
//! noisy CI machines. Adding `--strict` turns drift past ±20% into a
//! nonzero exit for local pre-merge runs.

use cras_bench::{check_bench, check_mode, quick_mode, strict_mode, write_bench};
use cras_sim::Duration;
use cras_workload::steered_reads::{contrast, points_json};

fn main() {
    let quick = quick_mode();
    let (streams, measure) = if quick {
        (3, Duration::from_secs(8))
    } else {
        (4, Duration::from_secs(16))
    };
    let (t, f, outs) = contrast(streams, 4, 3, measure, 0x57E3);
    println!("{}", t.render());
    println!("{}", f.render());

    let json = points_json(&outs);
    if check_mode() {
        if !check_bench("steered_reads", &json, quick) && strict_mode() {
            std::process::exit(1);
        }
        return;
    }

    // The experiment's acceptance bar, enforced on regeneration.
    let [direct, steered] = outs.as_slice() else {
        panic!("expected two outcomes, got {outs:?}");
    };
    for o in [direct, steered] {
        assert_eq!(o.dropped, 0, "dropped frames: {o:?}");
        assert_eq!(o.lost_reads, 0, "reads lost with no failure: {o:?}");
    }
    assert!(
        steered.steered_stream_intervals > 0,
        "hot spindle never bypassed: {steered:?}"
    );
    assert!(
        steered.tail_span < direct.tail_span,
        "steered p95 {:.4}s not below direct {:.4}s",
        steered.tail_span,
        direct.tail_span
    );
    assert_eq!(
        direct.delivered, steered.delivered,
        "steering altered delivered frames/bytes"
    );
    write_bench("steered_reads", &json, quick);
}
