//! Regenerates the head-scheduling ablation.

use cras_bench::{quick_mode, write_result};
use cras_workload::disk_sched::run;

fn main() {
    let ops = if quick_mode() { 300 } else { 2000 };
    let (t, _outs) = run(ops, 16, 0xD15C);
    println!("{}", t.render());
    write_result("disk_sched", &t.to_json());
}
