//! Regenerates Table 4: measured disk parameters (Appendix A).

use cras_bench::write_result;
use cras_workload::fig12::{run_calibration, table4};

fn main() {
    let cal = run_calibration();
    let t = table4(&cal);
    println!("{}", t.render());
    write_result("table4", &t.to_json());
}
