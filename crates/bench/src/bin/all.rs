//! Runs every figure/table regeneration in sequence (pass --quick for a
//! fast smoke run). Equivalent to running each dedicated binary.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload as wl;

fn main() {
    let quick = quick_mode();
    let secs = |q: u64, f: u64| Duration::from_secs(if quick { q } else { f });

    let cal = wl::fig12::run_calibration();
    for (name, text, json) in [
        {
            let t = wl::fig12::table4(&cal);
            ("table4", t.render(), t.to_json())
        },
        {
            let t = wl::capacity::table3(cal.params);
            ("table3", t.render(), t.to_json())
        },
        {
            let f = wl::fig12::fig12(&cal);
            ("fig12", f.render(), f.to_json())
        },
        {
            let f = wl::capacity::figure(cal.params);
            ("capacity", f.render(), f.to_json())
        },
        {
            let (t, _) = wl::ablate::run(cal.params);
            ("ablate", t.render(), t.to_json())
        },
    ] {
        println!("{text}");
        write_result(name, &json);
    }

    let fig6 = wl::fig6::run(&wl::fig6::Fig6Config {
        max_streams: if quick { 13 } else { 25 },
        step: if quick { 4 } else { 1 },
        measure: secs(10, 20),
        ..wl::fig6::Fig6Config::default()
    });
    println!("{}", fig6.render());
    write_result("fig6", &fig6.to_json());

    let (fig7, c7, u7) = wl::fig7::run(&wl::fig7::Fig7Config {
        trace: secs(15, 60),
        ..wl::fig7::Fig7Config::default()
    });
    println!("{}", fig7.render());
    println!(
        "# CRAS delay mean/max: {:.4}/{:.4}s; UFS: {:.4}/{:.4}s",
        c7.0, c7.1, u7.0, u7.1
    );
    write_result("fig7", &fig7.to_json());

    for (name, mut cfg) in [
        ("fig8", wl::admission_acc::AccuracyConfig::fig8()),
        ("fig9", wl::admission_acc::AccuracyConfig::fig9()),
    ] {
        if quick {
            cfg.measure = Duration::from_secs(10);
            cfg.step = if name == "fig8" { 4 } else { 2 };
        }
        let f = wl::admission_acc::run(&cfg);
        println!("{}", f.render());
        write_result(name, &f.to_json());
    }

    let (fig10, fp, rr) = wl::fig10::run(&wl::fig10::Fig10Config {
        trace: secs(15, 60),
        ..wl::fig10::Fig10Config::default()
    });
    println!("{}", fig10.render());
    println!("# FP max {:.4}s vs RR max {:.4}s", fp.1, rr.1);
    write_result("fig10", &fig10.to_json());

    let (frag_t, _) = wl::frag::run(if quick { 6 } else { 8 }, secs(10, 20), 0x5EED);
    println!("{}", frag_t.render());
    write_result("frag", &frag_t.to_json());

    let (vbr_t, _, _) = wl::vbr::run(secs(10, 30), 0x5BB);
    println!("{}", vbr_t.render());
    write_result("vbr", &vbr_t.to_json());

    let (qos_t, _) = wl::qos::run(secs(12, 30), secs(6, 15), 0x05);
    println!("{}", qos_t.render());
    write_result("qos", &qos_t.to_json());

    let (faults_t, _) = wl::faults::sweep(&[0.0, 0.01, 0.05, 0.2, 0.6], 8, secs(10, 20), 0xFA17);
    println!("{}", faults_t.render());
    write_result("faults", &faults_t.to_json());

    let fo_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8, 12] };
    let (fo_t, fo_f, _) = wl::failover::sweep(fo_counts, 4, secs(10, 20), 0xF417);
    println!("{}", fo_t.render());
    println!("{}", fo_f.render());
    write_result("failover", &fo_t.to_json());
    write_result("failover_rebuild", &fo_f.to_json());

    let (pf_t, pf_f, _) = wl::parity_failover::sweep(fo_counts, 4, secs(10, 20), 0x9417);
    println!("{}", pf_t.render());
    println!("{}", pf_f.render());
    write_result("parity_failover", &pf_t.to_json());
    write_result("parity_failover_rebuild", &pf_f.to_json());

    let cache_budgets: &[u64] = if quick {
        &[0, 64 << 20]
    } else {
        &[0, 16 << 20, 32 << 20, 64 << 20, 128 << 20]
    };
    let (cache_t, cache_f, _) = wl::cache_sharing::sweep(
        cache_budgets,
        if quick { 24 } else { 30 },
        10,
        Duration::from_millis(1500),
        secs(10, 20),
        0xCA5E,
    );
    println!("{}", cache_t.render());
    println!("{}", cache_f.render());
    write_result("cache_sharing", &cache_t.to_json());
    write_result("cache_sharing_admitted", &cache_f.to_json());

    let (cluster_p, cluster_counts): (wl::cluster_scaling::ClusterParams, &[usize]) = if quick {
        let mut p = wl::cluster_scaling::ClusterParams::standard();
        p.shards = 3;
        p.volumes = 2;
        p.titles = 120;
        p.stagger = Duration::from_millis(300);
        p.measure = Duration::from_secs(12);
        (p, &[160])
    } else {
        (
            wl::cluster_scaling::ClusterParams::standard(),
            &[240, 480, 960],
        )
    };
    let (cl_t, cl_f, _) = wl::cluster_scaling::sweep(&cluster_p, cluster_counts);
    println!("{}", cl_t.render());
    println!("{}", cl_f.render());
    write_result("cluster_scaling", &cl_t.to_json());
    write_result("cluster_scaling_served", &cl_f.to_json());

    let ov_counts: &[usize] = if quick { &[8] } else { &[4, 8, 12] };
    let (ov_t, ov_f, _) = wl::interval_overlap::sweep(ov_counts, 4, secs(12, 20), 0x0E);
    println!("{}", ov_t.render());
    println!("{}", ov_f.render());
    write_result("interval_overlap", &ov_t.to_json());
    write_result("interval_overlap_span", &ov_f.to_json());

    let intervals: &[f64] = if quick {
        &[0.5]
    } else {
        &[0.25, 0.5, 1.0, 1.5]
    };
    let (mc_t, _) = wl::measured_capacity::validate(intervals, 3, secs(10, 20), 0xCA11);
    println!("{}", mc_t.render());
    write_result("measured_capacity", &mc_t.to_json());

    let (cs_fig, _) = wl::capacity_scaling::run(&[1, 2, 4], secs(6, 12), 0xCA9A);
    println!("{}", cs_fig.render());
    write_result("capacity_scaling", &cs_fig.to_json());

    let (deploy_t, _) = wl::deploy::run(30.0);
    println!("{}", deploy_t.render());
    write_result("deploy", &deploy_t.to_json());

    let (ds_t, _) = wl::disk_sched::run(if quick { 300 } else { 2000 }, 16, 0xD15C);
    println!("{}", ds_t.render());
    write_result("disk_sched", &ds_t.to_json());

    let (multi_t, _, _) = wl::multi::run(secs(12, 30), 0x2C25);
    println!("{}", multi_t.render());
    write_result("multi", &multi_t.to_json());

    let (edit_t, _, _) = wl::editing::run(secs(12, 30), 0xED17);
    println!("{}", edit_t.render());
    write_result("editing", &edit_t.to_json());

    let (buf_t, _, _) = wl::buffer_ablation::run(if quick { 15.0 } else { 30.0 }, 10.0, 0xB0F);
    println!("{}", buf_t.render());
    write_result("buffer_ablation", &buf_t.to_json());
}
