//! Runs every figure/table regeneration in sequence (pass `--quick` for
//! a fast smoke run). Equivalent to running each dedicated binary.
//!
//! Every artifact also lands on the perf trajectory as a
//! `BENCH_<name>.json` at the repo root (plus the unwrapped copy under
//! `results/`), and per-step wall timings are collected into
//! `BENCH_workloads.json`. With `--check`, the suite re-runs and each
//! artifact is compared against its committed baseline instead of
//! being rewritten — warn-only, like `sim_speed -- --check`: drift
//! prints a `WARN` line but never fails the build.

use cras_bench::{check_bench, check_mode, quick_mode, strict_mode, write_bench, write_result};
use cras_sim::Duration;
use cras_workload as wl;

/// Routes each artifact to stdout plus the BENCH trajectory (write or
/// warn-only check), collecting per-step wall timings along the way.
struct Emitter {
    quick: bool,
    check: bool,
    strict: bool,
    drifted: Vec<&'static str>,
    started: std::time::Instant,
    last: std::time::Instant,
    steps: Vec<(&'static str, f64)>,
}

impl Emitter {
    fn new() -> Emitter {
        let now = std::time::Instant::now();
        Emitter {
            quick: quick_mode(),
            check: check_mode(),
            strict: strict_mode(),
            drifted: Vec::new(),
            started: now,
            last: now,
            steps: Vec::new(),
        }
    }

    /// Prints the rendered artifact and emits its JSON. The wall time
    /// since the previous emit is attributed to this step, so a step
    /// producing two artifacts charges the compute to the first.
    fn emit(&mut self, name: &'static str, text: &str, json: &str) {
        println!("{text}");
        self.steps.push((name, self.last.elapsed().as_secs_f64()));
        self.last = std::time::Instant::now();
        if self.check {
            if !check_bench(name, json, self.quick) {
                self.drifted.push(name);
            }
        } else {
            write_result(name, json);
            write_bench(name, json, self.quick);
        }
    }

    /// Emits the per-step timing artifact. Timings are the noisiest
    /// numbers in the suite, so under `--check` they get the same
    /// warn-only treatment as everything else (they never feed the
    /// `--strict` exit code). With `--check --strict`, any *workload*
    /// artifact that drifted past tolerance exits nonzero.
    fn finish(self) {
        let mut json = String::from("{\"steps\":[");
        for (i, (name, secs)) in self.steps.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("{{\"name\":\"{name}\",\"wall_secs\":{secs:.3}}}"));
        }
        json.push_str(&format!(
            "],\"total_wall_secs\":{:.3}}}",
            self.started.elapsed().as_secs_f64()
        ));
        if self.check {
            check_bench("workloads", &json, self.quick);
            if self.strict && !self.drifted.is_empty() {
                println!("STRICT: drift in {}", self.drifted.join(", "));
                std::process::exit(1);
            }
        } else {
            write_bench("workloads", &json, self.quick);
        }
    }
}

fn main() {
    let mut em = Emitter::new();
    let quick = em.quick;
    let secs = |q: u64, f: u64| Duration::from_secs(if quick { q } else { f });

    let cal = wl::fig12::run_calibration();
    for (name, text, json) in [
        {
            let t = wl::fig12::table4(&cal);
            ("table4", t.render(), t.to_json())
        },
        {
            let t = wl::capacity::table3(cal.params);
            ("table3", t.render(), t.to_json())
        },
        {
            let f = wl::fig12::fig12(&cal);
            ("fig12", f.render(), f.to_json())
        },
        {
            let f = wl::capacity::figure(cal.params);
            ("capacity", f.render(), f.to_json())
        },
        {
            let (t, _) = wl::ablate::run(cal.params);
            ("ablate", t.render(), t.to_json())
        },
    ] {
        em.emit(name, &text, &json);
    }

    let fig6 = wl::fig6::run(&wl::fig6::Fig6Config {
        max_streams: if quick { 13 } else { 25 },
        step: if quick { 4 } else { 1 },
        measure: secs(10, 20),
        ..wl::fig6::Fig6Config::default()
    });
    em.emit("fig6", &fig6.render(), &fig6.to_json());

    let (fig7, c7, u7) = wl::fig7::run(&wl::fig7::Fig7Config {
        trace: secs(15, 60),
        ..wl::fig7::Fig7Config::default()
    });
    em.emit("fig7", &fig7.render(), &fig7.to_json());
    println!(
        "# CRAS delay mean/max: {:.4}/{:.4}s; UFS: {:.4}/{:.4}s",
        c7.0, c7.1, u7.0, u7.1
    );

    for (name, mut cfg) in [
        ("fig8", wl::admission_acc::AccuracyConfig::fig8()),
        ("fig9", wl::admission_acc::AccuracyConfig::fig9()),
    ] {
        if quick {
            cfg.measure = Duration::from_secs(10);
            cfg.step = if name == "fig8" { 4 } else { 2 };
        }
        let f = wl::admission_acc::run(&cfg);
        em.emit(name, &f.render(), &f.to_json());
    }

    let (fig10, fp, rr) = wl::fig10::run(&wl::fig10::Fig10Config {
        trace: secs(15, 60),
        ..wl::fig10::Fig10Config::default()
    });
    em.emit("fig10", &fig10.render(), &fig10.to_json());
    println!("# FP max {:.4}s vs RR max {:.4}s", fp.1, rr.1);

    let (frag_t, _) = wl::frag::run(if quick { 6 } else { 8 }, secs(10, 20), 0x5EED);
    em.emit("frag", &frag_t.render(), &frag_t.to_json());

    let (vbr_t, _, _) = wl::vbr::run(secs(10, 30), 0x5BB);
    em.emit("vbr", &vbr_t.render(), &vbr_t.to_json());

    let (qos_t, _) = wl::qos::run(secs(12, 30), secs(6, 15), 0x05);
    em.emit("qos", &qos_t.render(), &qos_t.to_json());

    let (faults_t, _) = wl::faults::sweep(&[0.0, 0.01, 0.05, 0.2, 0.6], 8, secs(10, 20), 0xFA17);
    em.emit("faults", &faults_t.render(), &faults_t.to_json());

    let fo_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8, 12] };
    let (fo_t, fo_f, _) = wl::failover::sweep(fo_counts, 4, secs(10, 20), 0xF417);
    em.emit("failover", &fo_t.render(), &fo_t.to_json());
    em.emit("failover_rebuild", &fo_f.render(), &fo_f.to_json());

    let (pf_t, pf_f, _) = wl::parity_failover::sweep(fo_counts, 4, secs(10, 20), 0x9417);
    em.emit("parity_failover", &pf_t.render(), &pf_t.to_json());
    em.emit("parity_failover_rebuild", &pf_f.render(), &pf_f.to_json());

    let (sr_t, sr_f, sr_outs) =
        wl::steered_reads::contrast(if quick { 3 } else { 4 }, 4, 3, secs(8, 16), 0x57E3);
    em.emit(
        "steered_reads",
        &sr_t.render(),
        &wl::steered_reads::points_json(&sr_outs),
    );
    println!("{}", sr_f.render());

    let net_p = wl::net_delivery::NetParams {
        measure: secs(12, 30),
        ..wl::net_delivery::NetParams::default()
    };
    let (net_t, net_f, net_outs) = wl::net_delivery::suite(&net_p);
    em.emit(
        "net_delivery",
        &net_t.render(),
        &wl::net_delivery::points_json(&net_outs),
    );
    println!("{}", net_f.render());

    let cache_budgets: &[u64] = if quick {
        &[0, 64 << 20]
    } else {
        &[0, 16 << 20, 32 << 20, 64 << 20, 128 << 20]
    };
    let (cache_t, cache_f, _) = wl::cache_sharing::sweep(
        cache_budgets,
        if quick { 24 } else { 30 },
        10,
        Duration::from_millis(1500),
        secs(10, 20),
        0xCA5E,
    );
    em.emit("cache_sharing", &cache_t.render(), &cache_t.to_json());
    em.emit(
        "cache_sharing_admitted",
        &cache_f.render(),
        &cache_f.to_json(),
    );

    let (cluster_p, cluster_counts): (wl::cluster_scaling::ClusterParams, &[usize]) = if quick {
        let mut p = wl::cluster_scaling::ClusterParams::standard();
        p.shards = 3;
        p.volumes = 2;
        p.titles = 120;
        p.stagger = Duration::from_millis(300);
        p.measure = Duration::from_secs(12);
        (p, &[160])
    } else {
        (
            wl::cluster_scaling::ClusterParams::standard(),
            &[240, 480, 960],
        )
    };
    let (cl_t, cl_f, _) = wl::cluster_scaling::sweep(&cluster_p, cluster_counts);
    em.emit("cluster_scaling", &cl_t.render(), &cl_t.to_json());
    em.emit("cluster_scaling_served", &cl_f.render(), &cl_f.to_json());

    let (cat_p, cat_counts) = wl::catalog_scaling::bench_shape(quick);
    let cat_bound = wl::catalog_scaling::spindle_bound(&cat_p);
    let (cat_t, cat_f, cat_outs) = wl::catalog_scaling::sweep(&cat_p, &cat_counts);
    let cat_json = wl::catalog_scaling::points_json(cat_bound, &cat_outs);
    em.emit("catalog_scaling", &cat_t.render(), &cat_json);
    println!("{}", cat_f.render());

    let ov_counts: &[usize] = if quick { &[8] } else { &[4, 8, 12] };
    let (ov_t, ov_f, _) = wl::interval_overlap::sweep(ov_counts, 4, secs(12, 20), 0x0E);
    em.emit("interval_overlap", &ov_t.render(), &ov_t.to_json());
    em.emit("interval_overlap_span", &ov_f.render(), &ov_f.to_json());

    let intervals: &[f64] = if quick {
        &[0.5]
    } else {
        &[0.25, 0.5, 1.0, 1.5]
    };
    let (mc_t, _) = wl::measured_capacity::validate(intervals, 3, secs(10, 20), 0xCA11);
    em.emit("measured_capacity", &mc_t.render(), &mc_t.to_json());

    let (cs_fig, _) = wl::capacity_scaling::run(&[1, 2, 4], secs(6, 12), 0xCA9A);
    em.emit("capacity_scaling", &cs_fig.render(), &cs_fig.to_json());

    let (deploy_t, _) = wl::deploy::run(30.0);
    em.emit("deploy", &deploy_t.render(), &deploy_t.to_json());

    let (ds_t, _) = wl::disk_sched::run(if quick { 300 } else { 2000 }, 16, 0xD15C);
    em.emit("disk_sched", &ds_t.render(), &ds_t.to_json());

    let (multi_t, _, _) = wl::multi::run(secs(12, 30), 0x2C25);
    em.emit("multi", &multi_t.render(), &multi_t.to_json());

    let (edit_t, _, _) = wl::editing::run(secs(12, 30), 0xED17);
    em.emit("editing", &edit_t.render(), &edit_t.to_json());

    let (buf_t, _, _) = wl::buffer_ablation::run(if quick { 15.0 } else { 30.0 }, 10.0, 0xB0F);
    em.emit("buffer_ablation", &buf_t.render(), &buf_t.to_json());

    em.finish();
}
