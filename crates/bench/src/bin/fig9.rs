//! Regenerates Figure 9: admission accuracy, 6 Mbps streams.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::admission_acc::{run, AccuracyConfig};

fn main() {
    let mut cfg = AccuracyConfig::fig9();
    if quick_mode() {
        cfg.measure = Duration::from_secs(10);
    }
    let fig = run(&cfg);
    println!("{}", fig.render());
    write_result("fig9", &fig.to_json());
}
