//! Regenerates the §3.2 VBR buffer-waste ablation.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::vbr::run;

fn main() {
    let measure = if quick_mode() {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(30)
    };
    let (t, _cbr, _vbr) = run(measure, 0x5BB);
    println!("{}", t.render());
    write_result("vbr", &t.to_json());
}
