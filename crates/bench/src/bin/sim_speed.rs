//! Simulator-throughput benchmark: how fast the discrete-event core
//! chews through representative workloads, reported as dispatched
//! events per wall-clock second and simulated seconds per wall-clock
//! second. Two scenarios bracket the engine's load profile: a
//! capacity-scaling-style multi-volume round-robin load (many streams,
//! healthy array) and a parity-failover-style load (degraded reads and
//! a reconstruction rebuild fanning extra I/O onto every spindle).
//!
//! ```text
//! cargo run --release -p cras-bench --bin sim_speed [-- --quick] [-- --check]
//! ```
//!
//! With `--check`, instead of rewriting the baselines the run is
//! compared against the committed `BENCH_sim_speed.json` at the repo
//! root: a scenario whose events/sec moved more than ±30% prints a
//! `WARN` line. The check never fails the build — CI machines are too
//! noisy for a hard gate — it exists so a real regression shows up in
//! the log the day it lands.
#![allow(clippy::field_reassign_with_default)]

use cras_bench::{quick_mode, write_result};
use cras_core::PlacementPolicy;
use cras_media::StreamProfile;
use cras_sim::Duration;
use cras_sys::{SysConfig, System};

struct Measured {
    name: &'static str,
    events: u64,
    sim_secs: f64,
    wall_secs: f64,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }
    fn speedup(&self) -> f64 {
        self.sim_secs / self.wall_secs
    }
}

/// Runs `sys` for `sim` simulated seconds and measures the wall cost,
/// excluding setup (recording, admission) from the timed window.
fn measure(name: &'static str, mut sys: System, sim: Duration) -> Measured {
    let events0 = sys.engine.dispatched();
    let t0 = sys.now();
    let wall0 = std::time::Instant::now();
    sys.run_for(sim);
    let wall_secs = wall0.elapsed().as_secs_f64().max(1e-9);
    Measured {
        name,
        events: sys.engine.dispatched() - events0,
        sim_secs: sys.now().since(t0).as_secs_f64(),
        wall_secs,
    }
}

/// Capacity-scaling-style load: 4 volumes, round-robin whole-movie
/// placement, `streams` MPEG-1 players plus background readers.
fn capacity_scaling_like(streams: usize, secs: f64) -> System {
    let mut cfg = SysConfig::default();
    cfg.seed = 0x51ED;
    cfg.server.volumes = 4;
    let mut sys = System::new(cfg);
    let noise = sys.record_movie("noise.mov", StreamProfile::mpeg1(), secs);
    let mut clients = Vec::new();
    for i in 0..streams {
        let m = sys.record_movie(&format!("m{i}.mov"), StreamProfile::mpeg1(), secs);
        if let Ok(c) = sys.add_cras_player(&m, 1) {
            clients.push(c);
        }
    }
    assert!(!clients.is_empty(), "nothing admitted");
    sys.add_bg_reader(&noise);
    sys.start_bg();
    for c in clients {
        sys.start_playback(c);
    }
    sys
}

/// Parity-failover-style load: a 4-volume parity band loses one spindle
/// right away, so the whole measured window runs degraded reads
/// concurrently with the reconstruction rebuild.
fn parity_failover_like(streams: usize, secs: f64) -> System {
    let mut cfg = SysConfig::default();
    cfg.seed = 0xFA11;
    cfg.server.volumes = 4;
    cfg.server.placement = PlacementPolicy::Parity { group: 4 };
    let mut sys = System::new(cfg);
    let mut clients = Vec::new();
    for i in 0..streams {
        let m = sys.record_movie(&format!("p{i}.mov"), StreamProfile::mpeg1(), secs);
        if let Ok(c) = sys.add_cras_player(&m, 1) {
            clients.push(c);
        }
    }
    assert!(!clients.is_empty(), "nothing admitted");
    for c in clients {
        sys.start_playback(c);
    }
    sys.fail_volume(1);
    sys.attach_replacement(1);
    sys
}

/// Pulls `"events_per_sec"` for scenario `name` out of the committed
/// baseline JSON (hand-rolled: the repo takes no serde dependency).
fn baseline_events_per_sec(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"name\":\"{name}\"");
    let at = json.find(&key)?;
    let rest = &json[at..];
    let field = "\"events_per_sec\":";
    let v = &rest[rest.find(field)? + field.len()..];
    let end = v
        .find(|c: char| c != '-' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit())
        .unwrap_or(v.len());
    v[..end].parse().ok()
}

/// Warn-only comparison against the committed baseline: ±`TOLERANCE`
/// on events/sec. Always returns normally — the check informs, it does
/// not gate.
fn check_against_baseline(runs: &[Measured]) {
    const TOLERANCE: f64 = 0.30;
    let baseline = match std::fs::read_to_string("BENCH_sim_speed.json") {
        Ok(s) => s,
        Err(e) => {
            println!("WARN: no committed BENCH_sim_speed.json to check against ({e})");
            return;
        }
    };
    for r in runs {
        let Some(base) = baseline_events_per_sec(&baseline, r.name) else {
            println!("WARN: scenario {} missing from committed baseline", r.name);
            continue;
        };
        let ratio = r.events_per_sec() / base;
        if (ratio - 1.0).abs() > TOLERANCE {
            println!(
                "WARN: {} events/sec {:.0} vs baseline {:.0} ({:+.0}% — outside +/-{:.0}%)",
                r.name,
                r.events_per_sec(),
                base,
                (ratio - 1.0) * 100.0,
                TOLERANCE * 100.0
            );
        } else {
            println!(
                "OK:   {} events/sec {:.0} vs baseline {:.0} ({:+.0}%)",
                r.name,
                r.events_per_sec(),
                base,
                (ratio - 1.0) * 100.0
            );
        }
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (streams, movie_secs, sim) = if quick_mode() {
        (4, 12.0, Duration::from_secs(10))
    } else {
        (8, 35.0, Duration::from_secs(30))
    };
    let runs = [
        measure(
            "capacity_scaling",
            capacity_scaling_like(streams, movie_secs),
            sim,
        ),
        measure(
            "parity_failover",
            parity_failover_like(streams, movie_secs),
            sim,
        ),
    ];
    if check {
        for r in &runs {
            println!(
                "{:18} {:>9} events in {:.3}s wall  ({:.0} events/s, {:.1}x real time)",
                r.name,
                r.events,
                r.wall_secs,
                r.events_per_sec(),
                r.speedup()
            );
        }
        check_against_baseline(&runs);
        return;
    }
    let mut json = String::from("{\"scenarios\":[");
    for (i, r) in runs.iter().enumerate() {
        println!(
            "{:18} {:>9} events in {:.3}s wall  ({:.0} events/s, {:.1}x real time)",
            r.name,
            r.events,
            r.wall_secs,
            r.events_per_sec(),
            r.speedup()
        );
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{}\",\"events\":{},\"sim_secs\":{:?},\"wall_secs\":{:?},\
             \"events_per_sec\":{:?},\"sim_secs_per_wall_sec\":{:?}}}",
            r.name,
            r.events,
            r.sim_secs,
            r.wall_secs,
            r.events_per_sec(),
            r.speedup()
        ));
    }
    json.push_str("]}");
    write_result("BENCH_sim_speed", &json);
    // Also drop a copy at the repo root where perf-trajectory tooling
    // looks for `BENCH_*.json` artifacts.
    std::fs::write("BENCH_sim_speed.json", &json).expect("write BENCH_sim_speed.json");
}
