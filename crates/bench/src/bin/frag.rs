//! Regenerates the §3.2 fragmentation ablation.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::frag::run;

fn main() {
    let (streams, measure) = if quick_mode() {
        (6, Duration::from_secs(10))
    } else {
        (8, Duration::from_secs(20))
    };
    let (t, _outs) = run(streams, measure, 0x5EED);
    println!("{}", t.render());
    write_result("frag", &t.to_json());
}
