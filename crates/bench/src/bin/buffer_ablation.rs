//! Regenerates the §2.4 buffer-design ablation.

use cras_bench::write_result;
use cras_workload::buffer_ablation::run;

fn main() {
    let (t, _td, _ff) = run(30.0, 10.0, 0xB0F);
    println!("{}", t.render());
    write_result("buffer_ablation", &t.to_json());
}
