//! Regenerates Figure 8: admission accuracy, 1.5 Mbps streams.

use cras_bench::{quick_mode, write_result};
use cras_sim::Duration;
use cras_workload::admission_acc::{run, AccuracyConfig};

fn main() {
    let mut cfg = AccuracyConfig::fig8();
    if quick_mode() {
        cfg.max_streams = 8;
        cfg.step = 2;
        cfg.measure = Duration::from_secs(10);
    }
    let fig = run(&cfg);
    println!("{}", fig.render());
    write_result("fig8", &fig.to_json());
}
