//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds with no third-party crates, so the `benches/`
//! targets (declared with `harness = false`) use this instead of
//! Criterion: each benchmark warms up once, then runs batches until a
//! small time budget is spent and reports the mean iteration time.

use std::time::{Duration, Instant};

/// Per-benchmark time budget after warm-up.
const BUDGET: Duration = Duration::from_millis(200);

/// Runs `f` repeatedly for about [`BUDGET`] and prints the mean
/// iteration time as one aligned row.
pub fn bench<F: FnMut()>(name: &str, mut f: F) {
    f(); // Warm-up (also surfaces panics before timing starts).
    let start = Instant::now();
    let mut iters = 0u64;
    let mut batch = 1u64;
    while start.elapsed() < BUDGET {
        for _ in 0..batch {
            f();
        }
        iters += batch;
        // Grow batches so cheap closures are not dominated by the clock.
        batch = batch.saturating_mul(2).min(4096);
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<45} {:>12}  ({iters} iters)", fmt_time(per_iter));
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fmt_time_picks_unit() {
        assert_eq!(super::fmt_time(5e-9), "5.0 ns");
        assert_eq!(super::fmt_time(5e-6), "5.00 us");
        assert_eq!(super::fmt_time(5e-3), "5.00 ms");
        assert_eq!(super::fmt_time(5.0), "5.000 s");
    }
}
