//! Report generation: turns the JSON artifacts under `results/` into a
//! Markdown summary (series endpoints, table rows), so EXPERIMENTS.md can
//! be cross-checked against the latest run mechanically.

use cras_sim::json::Json as Value;

/// Summarizes one figure JSON: first/last point of every series.
pub fn summarize_figure(json: &Value) -> Option<String> {
    let id = json.get("id")?.as_str()?;
    let title = json.get("title")?.as_str()?;
    let series = json.get("series")?.as_array()?;
    let mut out = format!("### {id} — {title}\n\n| series | first (x, y) | last (x, y) | max y |\n|---|---|---|---|\n");
    for s in series {
        let name = s.get("name")?.as_str()?;
        let points = s.get("points")?.as_array()?;
        let fmt = |p: &Value| -> Option<String> {
            let x = p.at(0)?.as_f64()?;
            let y = p.at(1)?.as_f64()?;
            Some(format!("({x:.2}, {y:.4})"))
        };
        let first = points.first().and_then(fmt).unwrap_or_default();
        let last = points.last().and_then(fmt).unwrap_or_default();
        let max_y = points
            .iter()
            .filter_map(|p| p.at(1)?.as_f64())
            .fold(f64::NEG_INFINITY, f64::max);
        out.push_str(&format!("| {name} | {first} | {last} | {max_y:.4} |\n"));
    }
    Some(out)
}

/// Summarizes one key/value table JSON.
pub fn summarize_table(json: &Value) -> Option<String> {
    let id = json.get("id")?.as_str()?;
    let title = json.get("title")?.as_str()?;
    let rows = json.get("rows")?.as_array()?;
    let mut out = format!("### {id} — {title}\n\n| parameter | value | unit |\n|---|---|---|\n");
    for r in rows {
        let arr = r.as_array()?;
        let name = arr.first()?.as_str()?;
        let value = arr.get(1).and_then(Value::as_str)?;
        let unit = arr.get(2).and_then(Value::as_str)?;
        out.push_str(&format!("| {name} | {value} | {unit} |\n"));
    }
    Some(out)
}

/// Summarizes any artifact (figure or table).
pub fn summarize(json: &Value) -> Option<String> {
    if json.get("series").is_some() {
        summarize_figure(json)
    } else if json.get("rows").is_some() {
        summarize_table(json)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_sim::json::parse;

    #[test]
    fn figure_summary_extracts_endpoints() {
        let fig = parse(
            r#"{
            "id": "fig6",
            "title": "Throughput",
            "xlabel": "streams",
            "ylabel": "bytes/s",
            "series": [
                {"name": "CRAS", "points": [[1.0, 0.19], [25.0, 4.62]]},
                {"name": "UFS", "points": [[1.0, 0.18], [25.0, 1.95]]}
            ]
        }"#,
        )
        .unwrap();
        let s = summarize(&fig).unwrap();
        assert!(s.contains("fig6"));
        assert!(s.contains("(25.00, 4.6200)"));
        assert!(s.contains("| UFS |"));
    }

    #[test]
    fn table_summary_lists_rows() {
        let t = parse(
            r#"{
            "id": "table4",
            "title": "Disk parameters",
            "rows": [["D", "6.10", "MB/s"], ["T_rot", "8.33", "ms"]]
        }"#,
        )
        .unwrap();
        let s = summarize(&t).unwrap();
        assert!(s.contains("table4"));
        assert!(s.contains("| D | 6.10 | MB/s |"));
    }

    #[test]
    fn unknown_shape_rejected() {
        assert!(summarize(&parse(r#"{"foo": 1}"#).unwrap()).is_none());
    }
}
