//! Inodes: the classic FFS direct / single-indirect / double-indirect
//! block map.
//!
//! The map matters to the evaluation because *reading it costs disk I/O*:
//! the first access to an indirect region fetches the indirect block
//! through the buffer cache. CRAS avoids that steady-state cost by
//! resolving a file's full extent map once at `crs_open` time.

use crate::layout::{FsBlock, Ino, BSIZE, NDIRECT, NINDIR};

/// Which physical blocks must be read to reach a file block: zero, one or
/// two metadata blocks, then the data block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BmapPath {
    /// Metadata (indirect) blocks on the path, outermost first.
    pub meta: Vec<FsBlock>,
    /// The data block.
    pub data: FsBlock,
}

/// An in-memory inode.
#[derive(Clone, Debug)]
pub struct Inode {
    /// Inode number.
    pub ino: Ino,
    /// File length in bytes.
    pub size: u64,
    direct: [Option<FsBlock>; NDIRECT],
    /// Address of the single-indirect table block.
    indirect: Option<FsBlock>,
    ind_entries: Vec<Option<FsBlock>>,
    /// Address of the double-indirect table block.
    dindirect: Option<FsBlock>,
    /// First-level entries of the double-indirect tree:
    /// `(table_block, entries)`.
    dind_tables: Vec<Option<(FsBlock, Vec<Option<FsBlock>>)>>,
    /// Allocator state: cylinder group the file is currently filling and
    /// how many blocks it has placed there (for `maxbpg`).
    pub(crate) alloc_group: Option<u32>,
    pub(crate) blocks_in_group: u32,
}

impl Inode {
    /// Creates an empty inode.
    pub fn new(ino: Ino) -> Inode {
        Inode {
            ino,
            size: 0,
            direct: [None; NDIRECT],
            indirect: None,
            ind_entries: Vec::new(),
            dindirect: None,
            dind_tables: Vec::new(),
            alloc_group: None,
            blocks_in_group: 0,
        }
    }

    /// Number of data blocks implied by `size`.
    pub fn nblocks(&self) -> u64 {
        self.size.div_ceil(BSIZE as u64)
    }

    /// Looks up file block `fb`, returning the metadata path and the data
    /// block, or `None` for a hole / out-of-range block.
    pub fn bmap(&self, fb: u64) -> Option<BmapPath> {
        if fb < NDIRECT as u64 {
            return self.direct[fb as usize].map(|data| BmapPath {
                meta: Vec::new(),
                data,
            });
        }
        let fb = fb - NDIRECT as u64;
        if fb < NINDIR as u64 {
            let table = self.indirect?;
            let data = (*self.ind_entries.get(fb as usize)?)?;
            return Some(BmapPath {
                meta: vec![table],
                data,
            });
        }
        let fb = fb - NINDIR as u64;
        if fb < (NINDIR * NINDIR) as u64 {
            let root = self.dindirect?;
            let (l1_idx, l2_idx) = ((fb / NINDIR as u64) as usize, (fb % NINDIR as u64) as usize);
            let (table, entries) = self.dind_tables.get(l1_idx)?.as_ref()?;
            let data = (*entries.get(l2_idx)?)?;
            return Some(BmapPath {
                meta: vec![root, *table],
                data,
            });
        }
        None
    }

    /// Metadata blocks the *next* append at file block `fb` would need to
    /// allocate (0, 1 or 2 table blocks).
    pub fn meta_blocks_needed(&self, fb: u64) -> usize {
        if fb < NDIRECT as u64 {
            return 0;
        }
        let fb2 = fb - NDIRECT as u64;
        if fb2 < NINDIR as u64 {
            return usize::from(self.indirect.is_none());
        }
        let fb3 = fb2 - NINDIR as u64;
        let mut needed = usize::from(self.dindirect.is_none());
        let l1_idx = (fb3 / NINDIR as u64) as usize;
        let have_l2 = self
            .dind_tables
            .get(l1_idx)
            .map(Option::is_some)
            .unwrap_or(false);
        if !have_l2 {
            needed += 1;
        }
        needed
    }

    /// Installs the mapping for file block `fb`, consuming metadata table
    /// blocks from `meta` as needed (caller allocates them via
    /// [`Inode::meta_blocks_needed`]).
    ///
    /// # Panics
    ///
    /// Panics if `fb` is beyond the double-indirect range, if a required
    /// metadata block was not supplied, or if `fb` is already mapped.
    pub fn set_bmap(&mut self, fb: u64, data: FsBlock, meta: &mut Vec<FsBlock>) {
        if fb < NDIRECT as u64 {
            assert!(self.direct[fb as usize].is_none(), "remapping block {fb}");
            self.direct[fb as usize] = Some(data);
            return;
        }
        let fb2 = fb - NDIRECT as u64;
        if fb2 < NINDIR as u64 {
            if self.indirect.is_none() {
                self.indirect = Some(meta.pop().expect("missing indirect table block"));
                self.ind_entries = vec![None; NINDIR];
            }
            let slot = &mut self.ind_entries[fb2 as usize];
            assert!(slot.is_none(), "remapping block {fb}");
            *slot = Some(data);
            return;
        }
        let fb3 = fb2 - NINDIR as u64;
        assert!(
            fb3 < (NINDIR * NINDIR) as u64,
            "file block {fb} beyond double-indirect range"
        );
        if self.dindirect.is_none() {
            self.dindirect = Some(meta.pop().expect("missing double-indirect root block"));
            self.dind_tables = Vec::new();
        }
        let l1_idx = (fb3 / NINDIR as u64) as usize;
        let l2_idx = (fb3 % NINDIR as u64) as usize;
        if self.dind_tables.len() <= l1_idx {
            self.dind_tables.resize(l1_idx + 1, None);
        }
        if self.dind_tables[l1_idx].is_none() {
            let table = meta.pop().expect("missing indirect table block");
            self.dind_tables[l1_idx] = Some((table, vec![None; NINDIR]));
        }
        let (_, entries) = self.dind_tables[l1_idx].as_mut().expect("just created");
        assert!(entries[l2_idx].is_none(), "remapping block {fb}");
        entries[l2_idx] = Some(data);
    }

    /// All data blocks in file order (for extent-map construction).
    pub fn data_blocks(&self) -> Vec<FsBlock> {
        let mut out = Vec::with_capacity(self.nblocks() as usize);
        for fb in 0..self.nblocks() {
            if let Some(p) = self.bmap(fb) {
                out.push(p.data);
            }
        }
        out
    }

    /// All metadata (indirect-table) blocks owned by this inode.
    pub fn meta_blocks(&self) -> Vec<FsBlock> {
        let mut out = Vec::new();
        if let Some(b) = self.indirect {
            out.push(b);
        }
        if let Some(b) = self.dindirect {
            out.push(b);
        }
        for t in self.dind_tables.iter().flatten() {
            out.push(t.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_n(inode: &mut Inode, n: u64) {
        // Map file blocks 0..n to physical blocks 1000+fb, allocating
        // metadata from a counter at 900000.
        let mut next_meta = 900_000u64;
        for fb in 0..n {
            let needed = inode.meta_blocks_needed(fb);
            let mut meta: Vec<FsBlock> = (0..needed)
                .map(|_| {
                    next_meta += 1;
                    next_meta
                })
                .collect();
            inode.set_bmap(fb, 1000 + fb, &mut meta);
            assert!(meta.is_empty(), "unused metadata block");
        }
        inode.size = n * BSIZE as u64;
    }

    #[test]
    fn direct_blocks_have_no_metadata() {
        let mut i = Inode::new(1);
        map_n(&mut i, 12);
        for fb in 0..12 {
            let p = i.bmap(fb).unwrap();
            assert!(p.meta.is_empty());
            assert_eq!(p.data, 1000 + fb);
        }
        assert!(i.meta_blocks().is_empty());
    }

    #[test]
    fn single_indirect_region() {
        let mut i = Inode::new(1);
        map_n(&mut i, NDIRECT as u64 + 5);
        let p = i.bmap(NDIRECT as u64 + 3).unwrap();
        assert_eq!(p.meta.len(), 1);
        assert_eq!(p.data, 1000 + NDIRECT as u64 + 3);
        assert_eq!(i.meta_blocks().len(), 1);
    }

    #[test]
    fn double_indirect_region() {
        let mut i = Inode::new(1);
        let fb = NDIRECT as u64 + NINDIR as u64 + 10;
        map_n(&mut i, fb + 1);
        let p = i.bmap(fb).unwrap();
        assert_eq!(p.meta.len(), 2);
        // Metadata: 1 single-indirect + dindirect root + 1 L2 table.
        assert_eq!(i.meta_blocks().len(), 3);
    }

    #[test]
    fn bmap_out_of_range_is_none() {
        let mut i = Inode::new(1);
        map_n(&mut i, 4);
        assert!(i.bmap(4).is_none());
        assert!(i.bmap(1 << 40).is_none());
    }

    #[test]
    fn nblocks_rounds_up() {
        let mut i = Inode::new(1);
        i.size = 1;
        assert_eq!(i.nblocks(), 1);
        i.size = BSIZE as u64;
        assert_eq!(i.nblocks(), 1);
        i.size = BSIZE as u64 + 1;
        assert_eq!(i.nblocks(), 2);
    }

    #[test]
    fn data_blocks_in_order() {
        let mut i = Inode::new(1);
        map_n(&mut i, 20);
        let blocks = i.data_blocks();
        assert_eq!(blocks.len(), 20);
        assert_eq!(blocks[0], 1000);
        assert_eq!(blocks[19], 1019);
    }

    #[test]
    #[should_panic(expected = "remapping")]
    fn double_map_panics() {
        let mut i = Inode::new(1);
        let mut none = Vec::new();
        i.set_bmap(0, 5, &mut none);
        i.set_bmap(0, 6, &mut none);
    }

    #[test]
    fn meta_needed_transitions() {
        let mut i = Inode::new(1);
        assert_eq!(i.meta_blocks_needed(0), 0);
        assert_eq!(i.meta_blocks_needed(NDIRECT as u64), 1);
        let dind_start = (NDIRECT + NINDIR) as u64;
        assert_eq!(i.meta_blocks_needed(dind_start), 2);
        map_n(&mut i, dind_start + 1);
        // Tables now exist.
        assert_eq!(i.meta_blocks_needed(dind_start + 1), 0);
        // A new L2 table is needed at the next boundary.
        assert_eq!(i.meta_blocks_needed(dind_start + NINDIR as u64), 1);
    }
}
