//! `fsck`-style consistency checking.
//!
//! Walks every inode's data and metadata blocks and cross-checks them
//! against the allocator's bitmaps: every referenced block must be
//! allocated, no block may be referenced twice, and (optionally) every
//! allocated block must be referenced. The property tests lean on this to
//! prove the allocator and the fragmenter/rearranger never corrupt the
//! file system.

use std::collections::HashMap;

use crate::fs::Ufs;
use crate::layout::{FsBlock, Ino};

/// A single inconsistency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// An inode references a block the allocator believes is free.
    ReferencedButFree {
        /// The inode.
        ino: Ino,
        /// The block.
        block: FsBlock,
    },
    /// Two references to the same block.
    DoublyReferenced {
        /// First referencing inode.
        first: Ino,
        /// Second referencing inode.
        second: Ino,
        /// The block.
        block: FsBlock,
    },
    /// A block is allocated but no inode references it (a leak).
    AllocatedButUnreferenced {
        /// The block.
        block: FsBlock,
    },
    /// An inode's size disagrees with its mapped block count.
    SizeMismatch {
        /// The inode.
        ino: Ino,
        /// Blocks implied by size.
        expected_blocks: u64,
        /// Blocks actually mapped.
        mapped_blocks: u64,
    },
}

/// Full consistency report.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// All inconsistencies found.
    pub errors: Vec<CheckError>,
    /// Blocks referenced by files (data + metadata).
    pub referenced_blocks: u64,
    /// Files checked.
    pub files: usize,
}

impl CheckReport {
    /// Whether the file system is consistent.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Checks the file system. With `check_leaks`, allocated-but-unreferenced
/// blocks are reported too (block 0, the superblock, is exempt).
pub fn check(fs: &Ufs, check_leaks: bool) -> CheckReport {
    let mut owner: HashMap<FsBlock, Ino> = HashMap::new();
    let mut report = CheckReport::default();
    for (_name, ino) in fs.files() {
        report.files += 1;
        let inode = fs.inode(ino);
        let mapped = inode.data_blocks();
        let expected = inode.nblocks();
        if mapped.len() as u64 != expected {
            report.errors.push(CheckError::SizeMismatch {
                ino,
                expected_blocks: expected,
                mapped_blocks: mapped.len() as u64,
            });
        }
        for b in mapped.into_iter().chain(inode.meta_blocks()) {
            report.referenced_blocks += 1;
            if fs.is_block_free(b) {
                report
                    .errors
                    .push(CheckError::ReferencedButFree { ino, block: b });
            }
            if let Some(&first) = owner.get(&b) {
                report.errors.push(CheckError::DoublyReferenced {
                    first,
                    second: ino,
                    block: b,
                });
            } else {
                owner.insert(b, ino);
            }
        }
    }
    if check_leaks {
        for b in 1..fs.layout().total_blocks {
            if !fs.is_block_free(b) && !owner.contains_key(&b) {
                report
                    .errors
                    .push(CheckError::AllocatedButUnreferenced { block: b });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{MkfsParams, BSIZE};
    use cras_disk::geometry::DiskGeometry;

    fn fs() -> Ufs {
        let geom = DiskGeometry::st32550n();
        Ufs::format(&geom, MkfsParams::tuned(&geom), 5)
    }

    #[test]
    fn fresh_fs_is_clean() {
        let fs = fs();
        let rep = check(&fs, true);
        assert!(rep.is_clean(), "{:?}", rep.errors);
        assert_eq!(rep.files, 0);
    }

    #[test]
    fn files_survive_check() {
        let mut fs = fs();
        for i in 0..5 {
            let ino = fs.create(&format!("f{i}")).unwrap();
            fs.append(ino, (i as u64 + 1) * 3 * BSIZE as u64 + 100)
                .unwrap();
        }
        let rep = check(&fs, true);
        assert!(rep.is_clean(), "{:?}", rep.errors);
        assert_eq!(rep.files, 5);
        assert!(rep.referenced_blocks > 15);
    }

    #[test]
    fn remove_does_not_leak() {
        let mut fs = fs();
        let a = fs.create("a").unwrap();
        fs.append(a, 20 << 20).unwrap(); // Deep enough for indirects.
        fs.create("b").unwrap();
        let b = fs.lookup("b").unwrap();
        fs.append(b, 1 << 20).unwrap();
        fs.remove("a").unwrap();
        let rep = check(&fs, true);
        assert!(rep.is_clean(), "{:?}", rep.errors);
        assert_eq!(rep.files, 1);
    }

    #[test]
    fn corruption_is_detected() {
        let mut fs = fs();
        let ino = fs.create("x").unwrap();
        fs.append(ino, 4 * BSIZE as u64).unwrap();
        // Corrupt: free a block still referenced by the inode.
        let victim = fs.inode(ino).data_blocks()[1];
        fs.free_block_for_tests(victim);
        let rep = check(&fs, false);
        assert!(!rep.is_clean());
        assert!(matches!(
            rep.errors[0],
            CheckError::ReferencedButFree { block, .. } if block == victim
        ));
    }
}
