//! The Unix-server request path: a single served queue with head-of-line
//! blocking.
//!
//! Real-Time Mach runs Unix as a user-level server (Lites). A file-system
//! call is a message to that server; while the server synchronously waits
//! on disk I/O for one request, every later request — regardless of its
//! issuer's priority — waits behind it. That *priority inversion* is the
//! paper's explanation for UFS's collapse under background load
//! (Figure 6: "it cannot support even one stream when other disk I/O
//! traffic is present").
//!
//! [`UnixServer`] is the queue/state machine; the orchestrator charges CPU
//! time and performs the disk fetches it asks for.

use std::collections::VecDeque;

use crate::fs::FetchRun;

/// One file-system request from a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FsReq<T> {
    /// Caller routing tag.
    pub tag: T,
    /// Clustered runs that must be fetched synchronously, in order.
    pub fetch: Vec<FetchRun>,
    /// Read-ahead runs to issue asynchronously after completion.
    pub read_ahead: Vec<FetchRun>,
}

/// What the orchestrator must do next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step<T> {
    /// Fetch this run from disk (normal class, one command), then call
    /// [`UnixServer::fetch_done`].
    Fetch(FetchRun),
    /// The current request is complete: deliver to the client, issue its
    /// read-ahead, then call [`UnixServer::next_request`].
    Done(FsReq<T>),
}

struct Current<T> {
    req: FsReq<T>,
    next: usize,
}

/// The serialized Unix server.
pub struct UnixServer<T> {
    queue: VecDeque<FsReq<T>>,
    current: Option<Current<T>>,
    served: u64,
    max_queue: usize,
}

impl<T> Default for UnixServer<T> {
    fn default() -> Self {
        UnixServer::new()
    }
}

impl<T> UnixServer<T> {
    /// Creates an idle server.
    pub fn new() -> UnixServer<T> {
        UnixServer {
            queue: VecDeque::new(),
            current: None,
            served: 0,
            max_queue: 0,
        }
    }

    /// Whether a request is being served.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Queued requests (excluding the one in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Deepest queue observed.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// Requests fully served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The routing tag of the request in service, if any (the
    /// orchestrator uses it to route the in-flight fetch's completion,
    /// e.g. to the volume the request is reading).
    pub fn current_tag(&self) -> Option<&T> {
        self.current.as_ref().map(|c| &c.req.tag)
    }

    /// Submits a request. If the server is idle it starts immediately and
    /// the first step is returned; otherwise the request queues FIFO.
    pub fn submit(&mut self, req: FsReq<T>) -> Option<Step<T>> {
        if self.current.is_some() {
            self.queue.push_back(req);
            self.max_queue = self.max_queue.max(self.queue.len());
            None
        } else {
            Some(self.start(req))
        }
    }

    fn start(&mut self, req: FsReq<T>) -> Step<T> {
        debug_assert!(self.current.is_none());
        if req.fetch.is_empty() {
            self.served += 1;
            return Step::Done(req);
        }
        let first = req.fetch[0];
        self.current = Some(Current { req, next: 1 });
        Step::Fetch(first)
    }

    /// Reports the in-flight fetch as complete; returns the next step.
    ///
    /// # Panics
    ///
    /// Panics if no request is in service.
    pub fn fetch_done(&mut self) -> Step<T> {
        let cur = self.current.as_mut().expect("fetch_done while idle");
        if cur.next < cur.req.fetch.len() {
            let b = cur.req.fetch[cur.next];
            cur.next += 1;
            Step::Fetch(b)
        } else {
            let cur = self.current.take().expect("checked above");
            self.served += 1;
            Step::Done(cur.req)
        }
    }

    /// After a [`Step::Done`], pulls the next queued request (if any) and
    /// returns its first step.
    pub fn next_request(&mut self) -> Option<Step<T>> {
        if self.current.is_some() {
            return None;
        }
        let req = self.queue.pop_front()?;
        Some(self.start(req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(start: u64) -> FetchRun {
        FetchRun { start, len: 1 }
    }

    fn req(tag: u32, fetch: Vec<u64>) -> FsReq<u32> {
        FsReq {
            tag,
            fetch: fetch.into_iter().map(run).collect(),
            read_ahead: Vec::new(),
        }
    }

    #[test]
    fn cached_request_completes_immediately() {
        let mut s = UnixServer::new();
        match s.submit(req(1, vec![])) {
            Some(Step::Done(r)) => assert_eq!(r.tag, 1),
            other => panic!("expected Done, got {other:?}"),
        }
        assert!(!s.is_busy());
        assert_eq!(s.served(), 1);
    }

    #[test]
    fn fetches_run_in_order() {
        let mut s = UnixServer::new();
        let step = s.submit(req(1, vec![10, 11, 12])).unwrap();
        assert_eq!(step, Step::Fetch(run(10)));
        assert_eq!(s.fetch_done(), Step::Fetch(run(11)));
        assert_eq!(s.fetch_done(), Step::Fetch(run(12)));
        match s.fetch_done() {
            Step::Done(r) => assert_eq!(r.tag, 1),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn later_requests_wait_behind_current() {
        let mut s = UnixServer::new();
        let step = s.submit(req(1, vec![10])).unwrap();
        assert_eq!(step, Step::Fetch(run(10)));
        // High-priority caller's request still queues FIFO.
        assert!(s.submit(req(2, vec![20])).is_none());
        assert!(s.submit(req(3, vec![])).is_none());
        assert_eq!(s.queue_len(), 2);
        match s.fetch_done() {
            Step::Done(r) => assert_eq!(r.tag, 1),
            other => panic!("unexpected {other:?}"),
        }
        // Next request starts only when asked.
        let step = s.next_request().unwrap();
        assert_eq!(step, Step::Fetch(run(20)));
        match s.fetch_done() {
            Step::Done(r) => assert_eq!(r.tag, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Cached request 3 completes instantly when reached.
        match s.next_request().unwrap() {
            Step::Done(r) => assert_eq!(r.tag, 3),
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.next_request().is_none());
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn current_tag_names_request_in_service() {
        let mut s = UnixServer::new();
        assert_eq!(s.current_tag(), None);
        s.submit(req(7, vec![10]));
        s.submit(req(8, vec![20]));
        assert_eq!(s.current_tag(), Some(&7));
        s.fetch_done();
        s.next_request();
        assert_eq!(s.current_tag(), Some(&8));
    }

    #[test]
    fn next_request_while_busy_is_none() {
        let mut s = UnixServer::new();
        s.submit(req(1, vec![10]));
        s.submit(req(2, vec![20]));
        assert!(s.next_request().is_none());
    }

    #[test]
    fn max_queue_tracks_depth() {
        let mut s = UnixServer::new();
        s.submit(req(1, vec![10]));
        for i in 2..=5 {
            s.submit(req(i, vec![i as u64 * 10]));
        }
        assert_eq!(s.max_queue(), 4);
    }

    #[test]
    #[should_panic(expected = "while idle")]
    fn fetch_done_while_idle_panics() {
        let mut s: UnixServer<u32> = UnixServer::new();
        s.fetch_done();
    }
}
