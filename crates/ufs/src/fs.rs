//! The file system proper: namespace, file allocation, extent maps and
//! cache-aware read planning.
//!
//! Data contents are not stored — the simulation only needs *where* blocks
//! live and *when* they move. A file is its inode plus the block map the
//! allocator produced; reads are planned as the set of blocks that must be
//! fetched (metadata first), the cached remainder, and a read-ahead
//! suggestion.

use std::collections::{BTreeMap, BTreeSet};

use cras_disk::geometry::BlockNo;
use cras_sim::Rng;

use crate::alloc::Allocator;
use crate::cache::BufferCache;
use crate::inode::Inode;
use crate::layout::{
    fsblock_to_disk, max_file_size, FsBlock, FsLayout, Ino, MkfsParams, BSIZE, SECT_PER_FSBLOCK,
};

/// File-system errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Name already exists.
    Exists,
    /// No such file.
    NotFound,
    /// Out of disk space.
    NoSpace,
    /// Beyond the inode's addressable size.
    TooLarge,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FsError::Exists => "file exists",
            FsError::NotFound => "no such file",
            FsError::NoSpace => "no space left on device",
            FsError::TooLarge => "file too large",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FsError {}

/// A run of physically contiguous file data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    /// Byte offset within the file where the extent begins.
    pub file_offset: u64,
    /// First 512-byte disk block.
    pub disk_block: BlockNo,
    /// Length in 512-byte disk blocks.
    pub nblocks: u32,
}

impl Extent {
    /// Extent length in bytes.
    pub fn bytes(&self) -> u64 {
        self.nblocks as u64 * 512
    }
}

/// A physically contiguous run of file-system blocks fetched by one disk
/// command (clustered I/O, bounded by `maxcontig`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchRun {
    /// First file-system block.
    pub start: FsBlock,
    /// Number of contiguous blocks.
    pub len: u32,
}

impl FetchRun {
    /// Iterates the blocks of the run.
    pub fn blocks(&self) -> impl Iterator<Item = FsBlock> {
        self.start..self.start + self.len as u64
    }

    /// Transfer size in bytes.
    pub fn bytes(&self) -> u64 {
        self.len as u64 * BSIZE as u64
    }
}

/// Merges an ordered block list into contiguous runs of at most
/// `maxcontig` blocks.
pub fn merge_runs(blocks: &[FsBlock], maxcontig: u32) -> Vec<FetchRun> {
    let maxcontig = maxcontig.max(1);
    let mut out: Vec<FetchRun> = Vec::new();
    for &b in blocks {
        match out.last_mut() {
            Some(r) if r.start + r.len as u64 == b && r.len < maxcontig => r.len += 1,
            _ => out.push(FetchRun { start: b, len: 1 }),
        }
    }
    out
}

/// The plan for serving one read call.
#[derive(Clone, Debug, Default)]
pub struct ReadPlan {
    /// Cache-missing runs, in fetch order (metadata before the data it
    /// maps); each run is one clustered disk command.
    pub fetch: Vec<FetchRun>,
    /// Blocks served from the cache.
    pub cached: Vec<FsBlock>,
    /// Read-ahead runs (uncached data after the range).
    pub read_ahead: Vec<FetchRun>,
}

impl ReadPlan {
    /// Whether the read needs any disk I/O.
    pub fn is_fully_cached(&self) -> bool {
        self.fetch.is_empty()
    }

    /// Total blocks to fetch synchronously.
    pub fn fetch_blocks(&self) -> u64 {
        self.fetch.iter().map(|r| r.len as u64).sum()
    }
}

/// Fragmentation report for one file (the §3.2 editing problem).
#[derive(Clone, Debug)]
pub struct FragReport {
    /// Number of extents.
    pub extents: usize,
    /// Total data blocks.
    pub blocks: u64,
    /// Mean extent length in file-system blocks.
    pub avg_extent_fsblocks: f64,
    /// Fraction of adjacent block pairs that are physically contiguous.
    pub contiguity: f64,
}

/// The FFS-like file system.
pub struct Ufs {
    params: MkfsParams,
    alloc: Allocator,
    inodes: Vec<Inode>,
    names: BTreeMap<String, Ino>,
    cache: BufferCache,
    /// Blocks written in memory but not yet flushed to disk (the classic
    /// delayed-write path; a syncer drains them).
    dirty: BTreeSet<FsBlock>,
    rng: Rng,
    /// The volume this file system is formatted on (0 for a single-disk
    /// deployment; block numbers address that volume only).
    volume: u32,
}

impl Ufs {
    /// Formats a file system over `geom` with the given parameters (on
    /// volume 0 — the single-disk deployment).
    pub fn format(geom: &cras_disk::geometry::DiskGeometry, params: MkfsParams, seed: u64) -> Ufs {
        Ufs::format_volume(geom, params, seed, 0)
    }

    /// Formats a file system over one volume of a multi-disk set. Every
    /// block number the file system hands out addresses that volume.
    pub fn format_volume(
        geom: &cras_disk::geometry::DiskGeometry,
        params: MkfsParams,
        seed: u64,
        volume: u32,
    ) -> Ufs {
        let layout = FsLayout::compute(geom, params.cyl_per_group);
        let mut alloc = Allocator::new(layout, params.maxbpg);
        // Reserve block 0 as the superblock area.
        alloc.alloc_specific(0);
        Ufs {
            params,
            alloc,
            inodes: Vec::new(),
            names: BTreeMap::new(),
            cache: BufferCache::new(params.cache_blocks),
            dirty: BTreeSet::new(),
            rng: Rng::new(seed),
            volume,
        }
    }

    /// The volume this file system lives on.
    pub fn volume(&self) -> u32 {
        self.volume
    }

    /// The layout in use.
    pub fn layout(&self) -> &FsLayout {
        self.alloc.layout()
    }

    /// The mkfs parameters.
    pub fn params(&self) -> &MkfsParams {
        &self.params
    }

    /// The buffer cache (for statistics).
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// Total free space in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.alloc.free() * BSIZE as u64
    }

    /// Creates an empty file.
    pub fn create(&mut self, name: &str) -> Result<Ino, FsError> {
        if self.names.contains_key(name) {
            return Err(FsError::Exists);
        }
        let ino = self.inodes.len() as Ino;
        self.inodes.push(Inode::new(ino));
        self.names.insert(name.to_string(), ino);
        Ok(ino)
    }

    /// Creates an empty file whose allocation starts in the same cylinder
    /// group as `near`'s current allocation cursor — what happens when an
    /// editor writes scratch data next to the file being edited.
    pub fn create_near(&mut self, name: &str, near: Ino) -> Result<Ino, FsError> {
        let ino = self.create(name)?;
        let group = self.inodes[near as usize].alloc_group;
        self.inodes[ino as usize].alloc_group = group;
        Ok(ino)
    }

    /// Moves `ino`'s allocation cursor into the cylinder group `with` is
    /// currently filling (keeps an editor's scratch writes adjacent to the
    /// file being edited as it grows).
    pub fn colocate_cursor(&mut self, ino: Ino, with: Ino) {
        let group = self.inodes[with as usize].alloc_group;
        let inode = &mut self.inodes[ino as usize];
        if inode.alloc_group != group {
            inode.alloc_group = group;
            inode.blocks_in_group = 0;
        }
    }

    /// Looks a file up by name.
    pub fn lookup(&self, name: &str) -> Result<Ino, FsError> {
        self.names.get(name).copied().ok_or(FsError::NotFound)
    }

    /// File size in bytes.
    pub fn file_size(&self, ino: Ino) -> u64 {
        self.inodes[ino as usize].size
    }

    /// Read access to an inode.
    pub fn inode(&self, ino: Ino) -> &Inode {
        &self.inodes[ino as usize]
    }

    /// Lists all `(name, ino)` pairs.
    pub fn files(&self) -> impl Iterator<Item = (&str, Ino)> {
        self.names.iter().map(|(n, i)| (n.as_str(), *i))
    }

    /// Appends `bytes` to a file, allocating blocks per the FFS policy.
    pub fn append(&mut self, ino: Ino, bytes: u64) -> Result<(), FsError> {
        let new_size = self.inodes[ino as usize].size + bytes;
        if new_size > max_file_size() {
            return Err(FsError::TooLarge);
        }
        let first_new = self.inodes[ino as usize].nblocks();
        let last_new = new_size.div_ceil(BSIZE as u64);
        for fb in first_new..last_new {
            self.alloc_file_block(ino, fb)?;
        }
        self.inodes[ino as usize].size = new_size;
        Ok(())
    }

    /// Pre-allocates contiguous space without changing the file size
    /// beyond `bytes` — the §4 extension for constant-rate *writing*
    /// ("the Unix file system must be modified to allocate data blocks in
    /// advance when a file is created or expanded").
    pub fn preallocate(&mut self, ino: Ino, bytes: u64) -> Result<(), FsError> {
        self.append(ino, bytes)
    }

    fn alloc_file_block(&mut self, ino: Ino, fb: u64) -> Result<(), FsError> {
        // Metadata table blocks first, placed near the file's current
        // group.
        let needed = self.inodes[ino as usize].meta_blocks_needed(fb);
        let near = self.inodes[ino as usize].alloc_group.unwrap_or(0);
        let mut meta = Vec::with_capacity(needed);
        for _ in 0..needed {
            meta.push(self.alloc.alloc_meta(near).ok_or(FsError::NoSpace)?);
        }
        let prev = if fb == 0 {
            None
        } else {
            self.inodes[ino as usize].bmap(fb - 1).map(|p| p.data)
        };
        let inode = &mut self.inodes[ino as usize];
        let placed = self
            .alloc
            .alloc_data(
                prev,
                inode.alloc_group,
                inode.blocks_in_group,
                &mut self.rng,
            )
            .ok_or(FsError::NoSpace)?;
        if inode.alloc_group == Some(placed.group) && inode.blocks_in_group < self.alloc.maxbpg() {
            inode.blocks_in_group += 1;
        } else {
            inode.alloc_group = Some(placed.group);
            inode.blocks_in_group = 1;
        }
        inode.set_bmap(fb, placed.block, &mut meta);
        debug_assert!(meta.is_empty());
        Ok(())
    }

    /// Renames a file.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        if self.names.contains_key(to) {
            return Err(FsError::Exists);
        }
        let ino = self.names.remove(from).ok_or(FsError::NotFound)?;
        self.names.insert(to.to_string(), ino);
        Ok(())
    }

    /// Removes a file, freeing all its blocks.
    pub fn remove(&mut self, name: &str) -> Result<(), FsError> {
        let ino = self.lookup(name)?;
        self.names.remove(name);
        let inode = &self.inodes[ino as usize];
        let blocks: Vec<FsBlock> = inode
            .data_blocks()
            .into_iter()
            .chain(inode.meta_blocks())
            .collect();
        for b in blocks {
            self.alloc.free_block(b);
            self.cache.invalidate(b);
        }
        self.inodes[ino as usize] = Inode::new(ino);
        Ok(())
    }

    /// Builds the file's physical extent map in file order, merging
    /// adjacent file-system blocks into disk-block runs.
    ///
    /// CRAS resolves this once per `crs_open`, which is how it avoids
    /// touching UFS metadata during constant-rate retrieval.
    pub fn extent_map(&self, ino: Ino) -> Vec<Extent> {
        let inode = &self.inodes[ino as usize];
        let blocks = inode.data_blocks();
        let mut out: Vec<Extent> = Vec::new();
        for (i, &b) in blocks.iter().enumerate() {
            let disk = fsblock_to_disk(b);
            match out.last_mut() {
                Some(last) if last.disk_block + last.nblocks as u64 == disk => {
                    last.nblocks += SECT_PER_FSBLOCK;
                }
                _ => out.push(Extent {
                    file_offset: i as u64 * BSIZE as u64,
                    disk_block: disk,
                    nblocks: SECT_PER_FSBLOCK,
                }),
            }
        }
        out
    }

    /// Plans a read of `[offset, offset+len)` through the buffer cache.
    ///
    /// # Panics
    ///
    /// Panics if the range goes past end-of-file (callers clamp).
    pub fn plan_read(&mut self, ino: Ino, offset: u64, len: u64) -> ReadPlan {
        assert!(len > 0, "zero-length read");
        let inode = &self.inodes[ino as usize];
        assert!(
            offset + len <= inode.size,
            "read past EOF: {}+{} > {}",
            offset,
            len,
            inode.size
        );
        let first = offset / BSIZE as u64;
        let last = (offset + len - 1) / BSIZE as u64;
        let mut plan = ReadPlan::default();
        let mut fetch_blocks: Vec<FsBlock> = Vec::new();
        for fb in first..=last {
            let path = self.inodes[ino as usize]
                .bmap(fb)
                .expect("mapped block within size");
            for m in &path.meta {
                if self.cache.lookup(*m) {
                    if !plan.cached.contains(m) {
                        plan.cached.push(*m);
                    }
                } else if !fetch_blocks.contains(m) {
                    fetch_blocks.push(*m);
                }
            }
            if self.cache.lookup(path.data) {
                plan.cached.push(path.data);
            } else {
                fetch_blocks.push(path.data);
            }
        }
        plan.fetch = merge_runs(&fetch_blocks, self.params.maxcontig);
        // Clustered read-ahead (4.4BSD style): when the read reaches the
        // edge of the cached region — the *next* file block is uncached —
        // schedule a whole window of blocks in one go, rather than a
        // sliding one-block-at-a-time window that degenerates into tiny
        // disk commands.
        let nblocks = self.inodes[ino as usize].nblocks();
        let mut ra_blocks: Vec<FsBlock> = Vec::new();
        let next = last + 1;
        let trigger = next < nblocks
            && self.inodes[ino as usize]
                .bmap(next)
                .map(|p| !self.cache.peek(p.data) && !fetch_blocks.contains(&p.data))
                .unwrap_or(false);
        if trigger {
            for fb in next..(next + self.params.read_ahead as u64).min(nblocks) {
                if let Some(path) = self.inodes[ino as usize].bmap(fb) {
                    if !self.cache.peek(path.data) && !fetch_blocks.contains(&path.data) {
                        ra_blocks.push(path.data);
                    }
                }
            }
        }
        plan.read_ahead = merge_runs(&ra_blocks, self.params.maxcontig);
        plan
    }

    /// Writes `bytes` at the end of the file through the delayed-write
    /// path: blocks are allocated and dirtied in the cache; the syncer
    /// flushes them to disk later ([`Ufs::take_dirty`]). Returns the
    /// number of blocks newly dirtied.
    pub fn append_dirty(&mut self, ino: Ino, bytes: u64) -> Result<usize, FsError> {
        let first_new = self.inodes[ino as usize].nblocks();
        self.append(ino, bytes)?;
        let last_new = self.inodes[ino as usize].nblocks();
        let mut dirtied = 0;
        // The tail block of the previous append is rewritten too when the
        // new data starts mid-block.
        let from = first_new.saturating_sub(1);
        for fb in from..last_new {
            if let Some(p) = self.inodes[ino as usize].bmap(fb) {
                self.cache.insert(p.data);
                if self.dirty.insert(p.data) {
                    dirtied += 1;
                }
            }
        }
        Ok(dirtied)
    }

    /// Number of dirty blocks awaiting the syncer.
    pub fn dirty_blocks(&self) -> usize {
        self.dirty.len()
    }

    /// Drains up to `max_blocks` dirty blocks as clustered write runs for
    /// the syncer to submit to disk.
    pub fn take_dirty(&mut self, max_blocks: usize) -> Vec<FetchRun> {
        let take: Vec<FsBlock> = self.dirty.iter().copied().take(max_blocks).collect();
        for b in &take {
            self.dirty.remove(b);
        }
        merge_runs(&take, self.params.maxcontig)
    }

    /// Whether a file-system block is free in the allocator.
    pub fn is_block_free(&self, b: FsBlock) -> bool {
        self.alloc.is_free(b)
    }

    /// Frees a block behind the inode's back — corruption injection for
    /// the consistency checker's tests only.
    #[doc(hidden)]
    pub fn free_block_for_tests(&mut self, b: FsBlock) {
        self.alloc.free_block(b);
    }

    /// Records that a block arrived from disk and now sits in the cache.
    pub fn mark_cached(&mut self, block: FsBlock) {
        self.cache.insert(block);
    }

    /// Empties the buffer cache (e.g. between experiment runs).
    pub fn drop_caches(&mut self) {
        self.cache.clear();
    }

    /// Fragmentation report for a file.
    pub fn fragmentation(&self, ino: Ino) -> FragReport {
        let extents = self.extent_map(ino);
        let blocks = self.inodes[ino as usize].nblocks();
        let pairs = blocks.saturating_sub(1);
        let breaks = extents.len().saturating_sub(1) as u64;
        FragReport {
            extents: extents.len(),
            blocks,
            avg_extent_fsblocks: if extents.is_empty() {
                0.0
            } else {
                blocks as f64 / extents.len() as f64
            },
            contiguity: if pairs == 0 {
                1.0
            } else {
                (pairs - breaks.min(pairs)) as f64 / pairs as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_disk::geometry::DiskGeometry;

    fn tuned_fs() -> Ufs {
        let geom = DiskGeometry::st32550n();
        Ufs::format(&geom, MkfsParams::tuned(&geom), 7)
    }

    fn stock_fs() -> Ufs {
        let geom = DiskGeometry::st32550n();
        Ufs::format(&geom, MkfsParams::stock(&geom), 7)
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn create_lookup_append() {
        let mut fs = tuned_fs();
        let ino = fs.create("movie.mov").unwrap();
        assert_eq!(fs.lookup("movie.mov"), Ok(ino));
        assert_eq!(fs.create("movie.mov"), Err(FsError::Exists));
        assert_eq!(fs.lookup("nope"), Err(FsError::NotFound));
        fs.append(ino, 10 * MB).unwrap();
        assert_eq!(fs.file_size(ino), 10 * MB);
    }

    #[test]
    fn tuned_fs_allocates_contiguously() {
        let mut fs = tuned_fs();
        let ino = fs.create("movie").unwrap();
        fs.append(ino, 20 * MB).unwrap();
        let frag = fs.fragmentation(ino);
        assert!(
            frag.contiguity > 0.99,
            "tuned fs should be contiguous: {frag:?}"
        );
        assert!(frag.extents <= 3, "extents = {}", frag.extents);
    }

    #[test]
    fn stock_fs_spreads_large_files() {
        let mut fs = stock_fs();
        let ino = fs.create("movie").unwrap();
        fs.append(ino, 40 * MB).unwrap();
        let frag = fs.fragmentation(ino);
        assert!(
            frag.extents > 3,
            "stock fs should spread a 40 MB file: {frag:?}"
        );
    }

    #[test]
    fn extent_map_covers_file_in_order() {
        let mut fs = tuned_fs();
        let ino = fs.create("movie").unwrap();
        fs.append(ino, 5 * MB).unwrap();
        let extents = fs.extent_map(ino);
        let total: u64 = extents.iter().map(|e| e.bytes()).sum();
        assert_eq!(total, 5 * MB); // 5 MB is block-aligned.
        let mut off = 0;
        for e in &extents {
            assert_eq!(e.file_offset, off);
            off += e.bytes();
        }
    }

    #[test]
    fn plan_read_miss_then_hit() {
        let mut fs = tuned_fs();
        let ino = fs.create("f").unwrap();
        fs.append(ino, MB).unwrap();
        let plan = fs.plan_read(ino, 0, BSIZE as u64);
        assert_eq!(plan.fetch.len(), 1);
        assert!(plan.cached.is_empty());
        for r in &plan.fetch {
            for b in r.blocks() {
                fs.mark_cached(b);
            }
        }
        let plan2 = fs.plan_read(ino, 0, BSIZE as u64);
        assert!(plan2.is_fully_cached());
        assert_eq!(plan2.cached.len(), 1);
    }

    #[test]
    fn plan_read_includes_indirect_metadata() {
        let mut fs = tuned_fs();
        let ino = fs.create("f").unwrap();
        fs.append(ino, 2 * MB).unwrap(); // Past the 96 KB direct region.
        let off = NDIRECT_BYTES;
        let plan = fs.plan_read(ino, off, BSIZE as u64);
        assert_eq!(plan.fetch_blocks(), 2, "indirect table + data");
        const NDIRECT_BYTES: u64 = 12 * BSIZE as u64;
    }

    #[test]
    fn read_ahead_suggested() {
        let mut fs = tuned_fs();
        let ino = fs.create("f").unwrap();
        fs.append(ino, MB).unwrap();
        let plan = fs.plan_read(ino, 0, BSIZE as u64);
        let window = fs.params().read_ahead;
        assert_eq!(
            plan.read_ahead.iter().map(|r| r.len).sum::<u32>(),
            window,
            "full cluster window on first touch"
        );
        // Once the window is cached, no further read-ahead triggers until
        // the reader crosses its edge.
        for r in &plan.read_ahead {
            for b in r.blocks() {
                fs.mark_cached(b);
            }
        }
        for r in &plan.fetch {
            for b in r.blocks() {
                fs.mark_cached(b);
            }
        }
        let plan2 = fs.plan_read(ino, 0, BSIZE as u64);
        assert!(plan2.read_ahead.is_empty(), "window still cached");
    }

    #[test]
    fn read_ahead_stops_at_eof() {
        let mut fs = tuned_fs();
        let ino = fs.create("f").unwrap();
        fs.append(ino, BSIZE as u64).unwrap();
        let plan = fs.plan_read(ino, 0, BSIZE as u64);
        assert!(plan.read_ahead.is_empty());
    }

    #[test]
    fn remove_frees_space() {
        let mut fs = tuned_fs();
        let before = fs.free_bytes();
        let ino = fs.create("f").unwrap();
        fs.append(ino, 10 * MB).unwrap();
        assert!(fs.free_bytes() < before);
        fs.remove("f").unwrap();
        assert_eq!(fs.free_bytes(), before);
        assert_eq!(fs.lookup("f"), Err(FsError::NotFound));
    }

    #[test]
    fn interleaved_appends_fragment_stock() {
        let mut fs = tuned_fs();
        let a = fs.create("a").unwrap();
        let b = fs.create("b").unwrap();
        // Force both into overlapping allocation by alternating appends.
        for _ in 0..64 {
            fs.append(a, BSIZE as u64).unwrap();
            fs.append(b, BSIZE as u64).unwrap();
        }
        let fa = fs.fragmentation(a);
        // Interleaving cannot be fully contiguous unless the allocator
        // separated the two files into different groups (which
        // pick_start_group tries); accept either but verify consistency.
        assert_eq!(fa.blocks, 64);
        assert!(fa.extents >= 1);
    }

    #[test]
    fn append_dirty_tracks_blocks() {
        let mut fs = tuned_fs();
        let ino = fs.create("w").unwrap();
        let d1 = fs.append_dirty(ino, 3 * BSIZE as u64).unwrap();
        assert_eq!(d1, 3);
        assert_eq!(fs.dirty_blocks(), 3);
        // Partial-block append re-dirties the tail block.
        let d2 = fs.append_dirty(ino, 100).unwrap();
        assert_eq!(d2, 1);
        assert_eq!(fs.dirty_blocks(), 4);
        // Appending more re-dirties the shared tail but it is already
        // dirty, so only new blocks count.
        let d3 = fs.append_dirty(ino, BSIZE as u64).unwrap();
        assert_eq!(d3, 1);
    }

    #[test]
    fn take_dirty_drains_as_runs() {
        let mut fs = tuned_fs();
        let ino = fs.create("w").unwrap();
        fs.append_dirty(ino, 10 * BSIZE as u64).unwrap();
        let runs = fs.take_dirty(4);
        let total: u32 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 4);
        assert_eq!(fs.dirty_blocks(), 6);
        let rest = fs.take_dirty(100);
        assert_eq!(rest.iter().map(|r| r.len).sum::<u32>(), 6);
        assert_eq!(fs.dirty_blocks(), 0);
        // Contiguous allocation means few runs.
        assert!(rest.len() <= 2, "runs {rest:?}");
    }

    #[test]
    #[should_panic(expected = "past EOF")]
    fn read_past_eof_panics() {
        let mut fs = tuned_fs();
        let ino = fs.create("f").unwrap();
        fs.append(ino, 100).unwrap();
        fs.plan_read(ino, 0, 200);
    }

    #[test]
    fn too_large_rejected() {
        let mut fs = tuned_fs();
        let ino = fs.create("f").unwrap();
        assert_eq!(fs.append(ino, u64::MAX / 2), Err(FsError::TooLarge));
    }
}
