//! The buffer cache: an LRU over file-system blocks.
//!
//! UFS reads go through this cache; CRAS deliberately bypasses it ("the
//! server is carefully designed to avoid accessing any non real-time OS
//! servers during constant rate retrieval") and wires its own buffers.

use std::collections::HashMap;

use crate::layout::FsBlock;

/// LRU buffer cache keyed by file-system block number.
#[derive(Clone, Debug)]
pub struct BufferCache {
    capacity: usize,
    /// block -> sequence of last use.
    map: HashMap<FsBlock, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> BufferCache {
        assert!(capacity > 0, "zero-capacity cache");
        BufferCache {
            capacity,
            map: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss counters `(hits, misses)` from [`BufferCache::lookup`].
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Checks for `block`, counting a hit or miss and refreshing LRU order
    /// on hit.
    pub fn lookup(&mut self, block: FsBlock) -> bool {
        self.clock += 1;
        if let Some(seq) = self.map.get_mut(&block) {
            *seq = self.clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Checks for `block` without perturbing statistics or LRU order.
    pub fn peek(&self, block: FsBlock) -> bool {
        self.map.contains_key(&block)
    }

    /// Inserts `block`, evicting the least recently used entry if full.
    /// Returns the evicted block, if any.
    pub fn insert(&mut self, block: FsBlock) -> Option<FsBlock> {
        self.clock += 1;
        if self.map.insert(block, self.clock).is_some() {
            return None; // Refresh of an existing entry.
        }
        if self.map.len() > self.capacity {
            let victim = *self
                .map
                .iter()
                .min_by_key(|&(_, seq)| *seq)
                .map(|(b, _)| b)
                .expect("cache cannot be empty here");
            self.map.remove(&victim);
            return Some(victim);
        }
        None
    }

    /// Drops a block (e.g. on file truncation).
    pub fn invalidate(&mut self, block: FsBlock) {
        self.map.remove(&block);
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = BufferCache::new(4);
        assert!(!c.lookup(10));
        c.insert(10);
        assert!(c.lookup(10));
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BufferCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        // Touch 1 so 2 becomes the LRU.
        assert!(c.lookup(1));
        let evicted = c.insert(4);
        assert_eq!(evicted, Some(2));
        assert!(c.peek(1) && c.peek(3) && c.peek(4));
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut c = BufferCache::new(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.len(), 2);
        // Now 2 is LRU.
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = BufferCache::new(2);
        c.insert(1);
        c.invalidate(1);
        assert!(!c.peek(1));
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = BufferCache::new(8);
        for b in 0..100 {
            c.insert(b);
            assert!(c.len() <= 8);
        }
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        BufferCache::new(0);
    }
}
