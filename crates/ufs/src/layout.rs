//! On-disk layout constants and parameters of the FFS-like file system.
//!
//! CRAS "adopts the same disk layout policy as the Unix file system", so
//! both file systems read the same files. The layout matters for the
//! evaluation in two ways:
//!
//! * FFS's *cylinder-group spreading* (`maxbpg`) breaks large files into
//!   extents; the paper's `tunefs` tweak raises the contiguity so CRAS's
//!   256 KB reads stay sequential.
//! * UFS's small block size (8 KB) is why its per-stream throughput is a
//!   fraction of CRAS's: one disk trip per block (plus read-ahead).

use cras_disk::geometry::{BlockNo, DiskGeometry};

/// A file-system block index (not a 512-byte disk block).
pub type FsBlock = u64;

/// An inode number.
pub type Ino = u32;

/// File-system block size in bytes (classic FFS 8 KB).
pub const BSIZE: u32 = 8192;

/// 512-byte disk sectors per file-system block.
pub const SECT_PER_FSBLOCK: u32 = BSIZE / 512;

/// Direct block pointers per inode (classic FFS).
pub const NDIRECT: usize = 12;

/// Block pointers per indirect block (`BSIZE / 4`).
pub const NINDIR: usize = (BSIZE / 4) as usize;

/// Parameters chosen at `newfs`/`tunefs` time.
#[derive(Clone, Copy, Debug)]
pub struct MkfsParams {
    /// Cylinders per cylinder group.
    pub cyl_per_group: u32,
    /// Maximum file blocks placed in one cylinder group before the
    /// allocator moves the file to the next group (`tunefs -e`). The
    /// paper's tweak sets this very high so media files are "allocated as
    /// contiguously as possible".
    pub maxbpg: u32,
    /// Buffer-cache capacity in file-system blocks.
    pub cache_blocks: usize,
    /// Read-ahead window in blocks (clustered read-ahead, as in 4.4BSD).
    pub read_ahead: u32,
    /// Maximum physically contiguous blocks transferred per disk command
    /// (`tunefs -a maxcontig`; 8 blocks = 64 KB, which is also where the
    /// admission test's `B_other` comes from).
    pub maxcontig: u32,
}

impl MkfsParams {
    /// A stock-FFS configuration: files spread across groups every
    /// `blocks_per_group / 4` blocks.
    pub fn stock(geom: &DiskGeometry) -> MkfsParams {
        let layout = FsLayout::compute(geom, 16);
        MkfsParams {
            cyl_per_group: 16,
            maxbpg: (layout.blocks_per_group / 4).max(1),
            cache_blocks: 256, // 2 MB of cache on the paper's 32 MB box.
            read_ahead: 7,
            maxcontig: 8,
        }
    }

    /// The paper's `tunefs`-tweaked configuration: blocks "allocated as
    /// contiguously as possible".
    pub fn tuned(geom: &DiskGeometry) -> MkfsParams {
        let mut p = MkfsParams::stock(geom);
        p.maxbpg = u32::MAX;
        p
    }
}

/// Derived geometry of the file system over a given disk.
#[derive(Clone, Copy, Debug)]
pub struct FsLayout {
    /// Total file-system blocks on the disk.
    pub total_blocks: u64,
    /// Cylinder groups.
    pub ngroups: u32,
    /// File-system blocks per group (last group may be short).
    pub blocks_per_group: u32,
    /// Cylinders per group.
    pub cyl_per_group: u32,
}

impl FsLayout {
    /// Computes the layout for a disk with `cyl_per_group` cylinders per
    /// group.
    ///
    /// Groups are sized uniformly in *blocks* from the average cylinder
    /// capacity, which keeps block→group mapping O(1); the zoned disk
    /// means group boundaries only approximate cylinder boundaries, which
    /// is irrelevant to the scheduling behaviour being studied.
    pub fn compute(geom: &DiskGeometry, cyl_per_group: u32) -> FsLayout {
        assert!(cyl_per_group > 0, "zero cylinders per group");
        let total_blocks = geom.total_blocks() / SECT_PER_FSBLOCK as u64;
        let avg_blocks_per_cyl = total_blocks / geom.cylinders() as u64;
        let blocks_per_group = (avg_blocks_per_cyl * cyl_per_group as u64).max(1) as u32;
        let ngroups = total_blocks.div_ceil(blocks_per_group as u64) as u32;
        FsLayout {
            total_blocks,
            ngroups,
            blocks_per_group,
            cyl_per_group,
        }
    }

    /// Group containing a file-system block.
    pub fn group_of(&self, b: FsBlock) -> u32 {
        (b / self.blocks_per_group as u64) as u32
    }

    /// First block of a group.
    pub fn group_start(&self, g: u32) -> FsBlock {
        g as u64 * self.blocks_per_group as u64
    }

    /// Number of blocks in group `g` (the last group may be short).
    pub fn group_len(&self, g: u32) -> u32 {
        let start = self.group_start(g);
        let end = (start + self.blocks_per_group as u64).min(self.total_blocks);
        (end - start) as u32
    }
}

/// Converts a file-system block to its first 512-byte disk block.
pub fn fsblock_to_disk(b: FsBlock) -> BlockNo {
    b * SECT_PER_FSBLOCK as u64
}

/// Maximum file size addressable by the inode structure, in bytes.
pub fn max_file_size() -> u64 {
    let blocks = NDIRECT as u64 + NINDIR as u64 + (NINDIR as u64 * NINDIR as u64);
    blocks * BSIZE as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_covers_whole_disk() {
        let geom = DiskGeometry::st32550n();
        let l = FsLayout::compute(&geom, 16);
        assert!(l.total_blocks > 200_000, "blocks = {}", l.total_blocks);
        let sum: u64 = (0..l.ngroups).map(|g| l.group_len(g) as u64).sum();
        assert_eq!(sum, l.total_blocks);
    }

    #[test]
    fn group_mapping_roundtrip() {
        let geom = DiskGeometry::st32550n();
        let l = FsLayout::compute(&geom, 16);
        for g in [0, 1, l.ngroups / 2, l.ngroups - 1] {
            let start = l.group_start(g);
            assert_eq!(l.group_of(start), g);
            let last = start + l.group_len(g) as u64 - 1;
            assert_eq!(l.group_of(last), g);
        }
    }

    #[test]
    fn stock_params_spread_files() {
        let geom = DiskGeometry::st32550n();
        let p = MkfsParams::stock(&geom);
        let l = FsLayout::compute(&geom, p.cyl_per_group);
        assert!(p.maxbpg < l.blocks_per_group);
        assert!(MkfsParams::tuned(&geom).maxbpg > l.blocks_per_group);
    }

    #[test]
    fn fsblock_disk_conversion() {
        assert_eq!(fsblock_to_disk(0), 0);
        assert_eq!(fsblock_to_disk(1), 16);
        assert_eq!(fsblock_to_disk(100), 1600);
    }

    #[test]
    fn max_file_size_covers_movies() {
        // Must comfortably exceed the ~100 MB movies in the experiments.
        assert!(max_file_size() > 1 << 30);
    }
}
