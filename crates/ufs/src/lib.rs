//! `cras-ufs` — the Unix file system substrate and baseline.
//!
//! CRAS deliberately reuses the Unix file system's on-disk layout: "both
//! file systems access the same files, and functionality that does not
//! require real-time constraints ... is processed by the Unix file
//! system." This crate provides that file system:
//!
//! * [`layout`] — FFS geometry: 8 KB blocks, cylinder groups, `tunefs`
//!   parameters (`maxbpg`).
//! * [`alloc`] — the block allocator with the contiguity-versus-spreading
//!   placement policy.
//! * [`inode`] — direct/single/double-indirect block maps.
//! * [`cache`] — the LRU buffer cache (bypassed by CRAS).
//! * [`fs`] — namespace, append/remove, extent maps, cache-aware read
//!   planning ([`fs::Ufs`]).
//! * [`server`] — the serialized Lites-style server queue whose
//!   head-of-line blocking produces the priority inversions the paper
//!   measures (Figures 6–7).
//! * [`check`](mod@check) — an `fsck`-style consistency checker used heavily by the
//!   property tests.
//! * [`namespace`] — a hierarchical path layer over the flat inode table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cache;
pub mod check;
pub mod fs;
pub mod inode;
pub mod layout;
pub mod namespace;
pub mod server;

pub use alloc::{Allocator, CylGroup, Placed};
pub use cache::BufferCache;
pub use check::{check, CheckError, CheckReport};
pub use fs::{Extent, FragReport, FsError, ReadPlan, Ufs};
pub use inode::{BmapPath, Inode};
pub use layout::{FsBlock, FsLayout, Ino, MkfsParams, BSIZE, NDIRECT, NINDIR, SECT_PER_FSBLOCK};
pub use namespace::{Namespace, NsError};
pub use server::{FsReq, Step, UnixServer};
