//! A hierarchical path namespace over the flat inode table.
//!
//! The flat [`crate::fs::Ufs`] name map is all the experiments need, but
//! a real movie library lives in directories ("a video database while
//! using a conferencing tool"). [`Namespace`] provides Unix-style paths —
//! `mkdir -p`, lookup, readdir, rename, unlink — mapping leaves to inode
//! numbers. It is a pure name layer: callers pair it with a `Ufs` that
//! owns the inodes (directory metadata itself is small enough that the
//! paper's systems kept it cached; no disk traffic is modeled for it).

use std::collections::BTreeMap;

use crate::layout::Ino;

/// Namespace errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NsError {
    /// Path exists already.
    Exists,
    /// Path (or a parent) does not exist.
    NotFound,
    /// A non-directory appears in the middle of a path.
    NotADirectory,
    /// The operation needs a file but found a directory.
    IsADirectory,
    /// Directory not empty.
    NotEmpty,
    /// Malformed path (empty component, empty path).
    BadPath,
}

impl std::fmt::Display for NsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NsError::Exists => "path exists",
            NsError::NotFound => "no such path",
            NsError::NotADirectory => "not a directory",
            NsError::IsADirectory => "is a directory",
            NsError::NotEmpty => "directory not empty",
            NsError::BadPath => "malformed path",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NsError {}

/// A directory entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry {
    /// A file leaf.
    File(Ino),
    /// A subdirectory.
    Dir(DirNode),
}

/// One directory.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirNode {
    entries: BTreeMap<String, Entry>,
}

/// The namespace root.
#[derive(Clone, Debug, Default)]
pub struct Namespace {
    root: DirNode,
}

fn split(path: &str) -> Result<Vec<&str>, NsError> {
    let trimmed = path.trim_matches('/');
    if trimmed.is_empty() {
        return Err(NsError::BadPath);
    }
    let parts: Vec<&str> = trimmed.split('/').collect();
    if parts
        .iter()
        .any(|p| p.is_empty() || *p == "." || *p == "..")
    {
        return Err(NsError::BadPath);
    }
    Ok(parts)
}

impl Namespace {
    /// Creates an empty namespace.
    pub fn new() -> Namespace {
        Namespace::default()
    }

    fn dir_of<'a>(&'a self, parts: &[&str]) -> Result<&'a DirNode, NsError> {
        let mut cur = &self.root;
        for p in parts {
            match cur.entries.get(*p) {
                Some(Entry::Dir(d)) => cur = d,
                Some(Entry::File(_)) => return Err(NsError::NotADirectory),
                None => return Err(NsError::NotFound),
            }
        }
        Ok(cur)
    }

    fn dir_of_mut<'a>(
        &'a mut self,
        parts: &[&str],
        create: bool,
    ) -> Result<&'a mut DirNode, NsError> {
        let mut cur = &mut self.root;
        for p in parts {
            if create && !cur.entries.contains_key(*p) {
                cur.entries
                    .insert(p.to_string(), Entry::Dir(DirNode::default()));
            }
            match cur.entries.get_mut(*p) {
                Some(Entry::Dir(d)) => cur = d,
                Some(Entry::File(_)) => return Err(NsError::NotADirectory),
                None => return Err(NsError::NotFound),
            }
        }
        Ok(cur)
    }

    /// Creates all directories along `path` (like `mkdir -p`).
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), NsError> {
        let parts = split(path)?;
        self.dir_of_mut(&parts, true).map(|_| ())
    }

    /// Binds `path`'s leaf to a file inode; parents must exist.
    pub fn link(&mut self, path: &str, ino: Ino) -> Result<(), NsError> {
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = self.dir_of_mut(parents, false)?;
        if dir.entries.contains_key(*leaf) {
            return Err(NsError::Exists);
        }
        dir.entries.insert(leaf.to_string(), Entry::File(ino));
        Ok(())
    }

    /// Resolves a file path to its inode.
    pub fn lookup(&self, path: &str) -> Result<Ino, NsError> {
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = self.dir_of(parents)?;
        match dir.entries.get(*leaf) {
            Some(Entry::File(ino)) => Ok(*ino),
            Some(Entry::Dir(_)) => Err(NsError::IsADirectory),
            None => Err(NsError::NotFound),
        }
    }

    /// Lists a directory's entry names (`""` or `"/"` for the root).
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, NsError> {
        let dir = if path.trim_matches('/').is_empty() {
            &self.root
        } else {
            let parts = split(path)?;
            match self.dir_of(&parts) {
                Ok(d) => d,
                Err(NsError::NotFound) => return Err(NsError::NotFound),
                Err(e) => return Err(e),
            }
        };
        Ok(dir.entries.keys().cloned().collect())
    }

    /// Removes a file binding (the caller frees the inode through `Ufs`).
    pub fn unlink(&mut self, path: &str) -> Result<Ino, NsError> {
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = self.dir_of_mut(parents, false)?;
        match dir.entries.get(*leaf) {
            Some(Entry::File(_)) => {}
            Some(Entry::Dir(_)) => return Err(NsError::IsADirectory),
            None => return Err(NsError::NotFound),
        }
        match dir.entries.remove(*leaf) {
            Some(Entry::File(ino)) => Ok(ino),
            _ => unreachable!("checked above"),
        }
    }

    /// Removes an *empty* directory.
    pub fn rmdir(&mut self, path: &str) -> Result<(), NsError> {
        let parts = split(path)?;
        let (leaf, parents) = parts.split_last().expect("split is non-empty");
        let dir = self.dir_of_mut(parents, false)?;
        match dir.entries.get(*leaf) {
            Some(Entry::Dir(d)) if d.entries.is_empty() => {
                dir.entries.remove(*leaf);
                Ok(())
            }
            Some(Entry::Dir(_)) => Err(NsError::NotEmpty),
            Some(Entry::File(_)) => Err(NsError::NotADirectory),
            None => Err(NsError::NotFound),
        }
    }

    /// Renames a file from one path to another (parents of the target
    /// must exist).
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), NsError> {
        // Validate the target before unlinking the source.
        let to_parts = split(to)?;
        let (to_leaf, to_parents) = to_parts.split_last().expect("non-empty");
        {
            let dir = self.dir_of(to_parents)?;
            if dir.entries.contains_key(*to_leaf) {
                return Err(NsError::Exists);
            }
        }
        let ino = self.unlink(from)?;
        self.link(to, ino)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mkdir_link_lookup() {
        let mut ns = Namespace::new();
        ns.mkdir_p("/movies/action").unwrap();
        ns.link("/movies/action/m1.mov", 7).unwrap();
        assert_eq!(ns.lookup("/movies/action/m1.mov"), Ok(7));
        assert_eq!(ns.lookup("movies/action/m1.mov"), Ok(7));
        assert_eq!(ns.lookup("/movies/action/m2.mov"), Err(NsError::NotFound));
    }

    #[test]
    fn readdir_lists_entries() {
        let mut ns = Namespace::new();
        ns.mkdir_p("/a/b").unwrap();
        ns.link("/a/x", 1).unwrap();
        ns.link("/a/b/y", 2).unwrap();
        assert_eq!(ns.readdir("/a").unwrap(), vec!["b", "x"]);
        assert_eq!(ns.readdir("/").unwrap(), vec!["a"]);
        assert_eq!(ns.readdir("/a/b").unwrap(), vec!["y"]);
    }

    #[test]
    fn file_in_path_middle_rejected() {
        let mut ns = Namespace::new();
        ns.link("file", 1).unwrap();
        assert_eq!(ns.lookup("file/sub"), Err(NsError::NotADirectory));
        assert_eq!(ns.link("file/sub", 2), Err(NsError::NotADirectory));
    }

    #[test]
    fn unlink_and_rmdir() {
        let mut ns = Namespace::new();
        ns.mkdir_p("/d").unwrap();
        ns.link("/d/f", 3).unwrap();
        assert_eq!(ns.rmdir("/d"), Err(NsError::NotEmpty));
        assert_eq!(ns.unlink("/d/f"), Ok(3));
        assert_eq!(ns.rmdir("/d"), Ok(()));
        assert_eq!(ns.readdir("/").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn rename_moves_across_directories() {
        let mut ns = Namespace::new();
        ns.mkdir_p("/a").unwrap();
        ns.mkdir_p("/b").unwrap();
        ns.link("/a/m", 9).unwrap();
        ns.rename("/a/m", "/b/n").unwrap();
        assert_eq!(ns.lookup("/b/n"), Ok(9));
        assert_eq!(ns.lookup("/a/m"), Err(NsError::NotFound));
        // Existing target refused; source untouched.
        ns.link("/a/m2", 10).unwrap();
        assert_eq!(ns.rename("/a/m2", "/b/n"), Err(NsError::Exists));
        assert_eq!(ns.lookup("/a/m2"), Ok(10));
    }

    #[test]
    fn bad_paths_rejected() {
        let mut ns = Namespace::new();
        assert_eq!(ns.mkdir_p(""), Err(NsError::BadPath));
        assert_eq!(ns.mkdir_p("/"), Err(NsError::BadPath));
        assert_eq!(ns.link("/a//b", 1), Err(NsError::BadPath));
        assert_eq!(ns.link("/../x", 1), Err(NsError::BadPath));
    }

    #[test]
    fn duplicate_link_rejected() {
        let mut ns = Namespace::new();
        ns.link("x", 1).unwrap();
        assert_eq!(ns.link("x", 2), Err(NsError::Exists));
        assert_eq!(ns.lookup("x"), Ok(1));
    }
}
