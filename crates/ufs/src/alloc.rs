//! The block allocator: cylinder groups, free bitmaps, and the FFS
//! placement policy.
//!
//! Placement rules (classic FFS, simplified to what affects disk-head
//! behaviour):
//!
//! 1. A file's next block goes *immediately after its previous block* when
//!    that block is free (sequential placement).
//! 2. Otherwise the nearest free block in the same cylinder group.
//! 3. After a file has placed `maxbpg` blocks in one group, it is moved to
//!    the group with the most free space (the spreading policy the paper
//!    defeats with `tunefs`).
//! 4. When a group fills, allocation rotates to the next group with space.

use cras_sim::Rng;

use crate::layout::{FsBlock, FsLayout};

/// One cylinder group's allocation state.
#[derive(Clone, Debug)]
pub struct CylGroup {
    /// Group index.
    pub index: u32,
    /// First file-system block.
    pub start: FsBlock,
    /// Bitmap: `true` = allocated.
    used: Vec<bool>,
    /// Number of free blocks.
    pub nfree: u32,
    /// Rotor: where the last in-group search ended.
    rotor: u32,
}

impl CylGroup {
    fn new(index: u32, start: FsBlock, len: u32) -> CylGroup {
        CylGroup {
            index,
            start,
            used: vec![false; len as usize],
            nfree: len,
            rotor: 0,
        }
    }

    fn len(&self) -> u32 {
        self.used.len() as u32
    }

    fn is_free(&self, b: FsBlock) -> bool {
        !self.used[(b - self.start) as usize]
    }

    fn take(&mut self, b: FsBlock) {
        let i = (b - self.start) as usize;
        assert!(!self.used[i], "double allocation of block {b}");
        self.used[i] = true;
        self.nfree -= 1;
        self.rotor = (i as u32 + 1) % self.len();
    }

    fn release(&mut self, b: FsBlock) {
        let i = (b - self.start) as usize;
        assert!(self.used[i], "freeing free block {b}");
        self.used[i] = false;
        self.nfree += 1;
    }

    /// Finds the first free block at or after the rotor (wrapping).
    fn find_free(&self) -> Option<FsBlock> {
        if self.nfree == 0 {
            return None;
        }
        let n = self.used.len();
        for off in 0..n {
            let i = (self.rotor as usize + off) % n;
            if !self.used[i] {
                return Some(self.start + i as u64);
            }
        }
        None
    }
}

/// The whole-disk allocator.
#[derive(Clone, Debug)]
pub struct Allocator {
    layout: FsLayout,
    groups: Vec<CylGroup>,
    maxbpg: u32,
    allocated: u64,
}

/// Outcome of one block allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placed {
    /// The block chosen.
    pub block: FsBlock,
    /// The group it landed in.
    pub group: u32,
}

impl Allocator {
    /// Creates an allocator over `layout` with spreading threshold
    /// `maxbpg`.
    pub fn new(layout: FsLayout, maxbpg: u32) -> Allocator {
        let groups = (0..layout.ngroups)
            .map(|g| CylGroup::new(g, layout.group_start(g), layout.group_len(g)))
            .collect();
        Allocator {
            layout,
            groups,
            maxbpg,
            allocated: 0,
        }
    }

    /// The layout.
    pub fn layout(&self) -> &FsLayout {
        &self.layout
    }

    /// The spreading threshold.
    pub fn maxbpg(&self) -> u32 {
        self.maxbpg
    }

    /// Total allocated blocks.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Total free blocks.
    pub fn free(&self) -> u64 {
        self.groups.iter().map(|g| g.nfree as u64).sum()
    }

    /// Free blocks in one group.
    pub fn group_free(&self, g: u32) -> u32 {
        self.groups[g as usize].nfree
    }

    /// Whether a specific block is free.
    pub fn is_free(&self, b: FsBlock) -> bool {
        let g = self.layout.group_of(b);
        self.groups[g as usize].is_free(b)
    }

    /// Allocates the specific block `b` (used for metadata placed next to
    /// data, and by tests).
    ///
    /// # Panics
    ///
    /// Panics if `b` is already allocated.
    pub fn alloc_specific(&mut self, b: FsBlock) {
        let g = self.layout.group_of(b);
        self.groups[g as usize].take(b);
        self.allocated += 1;
    }

    /// Frees a block.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not allocated.
    pub fn free_block(&mut self, b: FsBlock) {
        let g = self.layout.group_of(b);
        self.groups[g as usize].release(b);
        self.allocated -= 1;
    }

    /// Picks a starting group for a new file: the group with the most free
    /// space, with a random tiebreak so concurrent files spread out.
    pub fn pick_start_group(&self, rng: &mut Rng) -> u32 {
        let best = self
            .groups
            .iter()
            .map(|g| g.nfree)
            .max()
            .expect("no groups");
        let candidates: Vec<u32> = self
            .groups
            .iter()
            .filter(|g| g.nfree == best)
            .map(|g| g.index)
            .collect();
        *rng.pick(&candidates)
    }

    /// Allocates the next data block for a file.
    ///
    /// `prev` is the file's previous data block (for sequential
    /// placement); `cur_group`/`blocks_in_group` are the file's allocator
    /// cursor (enforcing `maxbpg`).
    ///
    /// Returns `None` when the disk is full.
    pub fn alloc_data(
        &mut self,
        prev: Option<FsBlock>,
        cur_group: Option<u32>,
        blocks_in_group: u32,
        rng: &mut Rng,
    ) -> Option<Placed> {
        let mut group = cur_group.unwrap_or_else(|| self.pick_start_group(rng));
        // Spreading policy: quota exhausted -> move to the emptiest group.
        let mut fresh_group = false;
        if blocks_in_group >= self.maxbpg {
            group = self.pick_start_group(rng);
            fresh_group = true;
        }
        // Rule 1: sequentially after the previous block, same group only.
        if !fresh_group {
            if let Some(p) = prev {
                let next = p + 1;
                if next < self.layout.total_blocks {
                    let g = self.layout.group_of(next);
                    if g == group && self.groups[g as usize].is_free(next) {
                        self.groups[g as usize].take(next);
                        self.allocated += 1;
                        return Some(Placed { block: next, group });
                    }
                }
            }
        }
        // Rule 2: nearest free in the chosen group, then rotate groups.
        let ng = self.layout.ngroups;
        for off in 0..ng {
            let g = (group + off) % ng;
            if let Some(b) = self.groups[g as usize].find_free() {
                self.groups[g as usize].take(b);
                self.allocated += 1;
                return Some(Placed { block: b, group: g });
            }
        }
        None
    }

    /// Allocates a metadata block near the given data group.
    pub fn alloc_meta(&mut self, near_group: u32) -> Option<FsBlock> {
        let ng = self.layout.ngroups;
        for off in 0..ng {
            let g = (near_group + off) % ng;
            if let Some(b) = self.groups[g as usize].find_free() {
                self.groups[g as usize].take(b);
                self.allocated += 1;
                return Some(b);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_disk::geometry::DiskGeometry;

    fn small_alloc(maxbpg: u32) -> Allocator {
        let geom = DiskGeometry::uniform(64, 2, 64, 7200);
        // 64*2*64 = 8192 disk blocks = 512 fs blocks; 8 cyl/group.
        let layout = FsLayout::compute(&geom, 8);
        Allocator::new(layout, maxbpg)
    }

    #[test]
    fn sequential_placement_when_contiguous_allowed() {
        let mut a = small_alloc(u32::MAX);
        let mut rng = Rng::new(1);
        let first = a.alloc_data(None, None, 0, &mut rng).unwrap();
        let mut prev = first;
        for i in 1..100u32 {
            let p = a
                .alloc_data(Some(prev.block), Some(prev.group), i, &mut rng)
                .unwrap();
            assert_eq!(p.block, prev.block + 1, "block {i} not sequential");
            prev = p;
        }
    }

    #[test]
    fn maxbpg_forces_group_switch() {
        let mut a = small_alloc(8);
        let mut rng = Rng::new(2);
        let mut prev: Option<Placed> = None;
        let mut groups_used = std::collections::BTreeSet::new();
        let mut in_group = 0;
        for _ in 0..40 {
            let p = a
                .alloc_data(
                    prev.map(|p| p.block),
                    prev.map(|p| p.group),
                    in_group,
                    &mut rng,
                )
                .unwrap();
            if prev.map(|q| q.group) == Some(p.group) {
                in_group += 1;
            } else {
                in_group = 1;
            }
            groups_used.insert(p.group);
            prev = Some(p);
        }
        assert!(
            groups_used.len() >= 4,
            "spreading should use several groups: {groups_used:?}"
        );
    }

    #[test]
    fn fills_whole_disk_then_none() {
        let mut a = small_alloc(u32::MAX);
        let mut rng = Rng::new(3);
        let total = a.layout().total_blocks;
        let mut prev: Option<Placed> = None;
        for _ in 0..total {
            let p = a.alloc_data(prev.map(|p| p.block), prev.map(|p| p.group), 0, &mut rng);
            prev = Some(p.expect("disk should not be full yet"));
        }
        assert_eq!(a.free(), 0);
        assert!(a.alloc_data(None, None, 0, &mut rng).is_none());
    }

    #[test]
    fn free_then_realloc() {
        let mut a = small_alloc(u32::MAX);
        let mut rng = Rng::new(4);
        let p = a.alloc_data(None, None, 0, &mut rng).unwrap();
        assert!(!a.is_free(p.block));
        a.free_block(p.block);
        assert!(a.is_free(p.block));
        assert_eq!(a.allocated(), 0);
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn double_alloc_specific_panics() {
        let mut a = small_alloc(u32::MAX);
        a.alloc_specific(5);
        a.alloc_specific(5);
    }

    #[test]
    fn meta_allocated_near_group() {
        let mut a = small_alloc(u32::MAX);
        let b = a.alloc_meta(3).unwrap();
        assert_eq!(a.layout().group_of(b), 3);
    }

    #[test]
    fn pick_start_group_prefers_empty() {
        let mut a = small_alloc(u32::MAX);
        let mut rng = Rng::new(5);
        // Exhaust group 0 partially; start group should not be 0... unless
        // tie. Fill group 0 completely to be sure.
        let len = a.layout().group_len(0);
        for i in 0..len {
            a.alloc_specific(i as u64);
        }
        for _ in 0..10 {
            assert_ne!(a.pick_start_group(&mut rng), 0);
        }
    }

    #[test]
    fn interleaved_files_fragment() {
        // Two files appended alternately in the same group produce
        // non-contiguous layouts — the §3.2 "editing" problem.
        let mut a = small_alloc(u32::MAX);
        let mut rng = Rng::new(6);
        let mut fa: Option<Placed> = None;
        let mut fb: Option<Placed> = None;
        let mut a_blocks = Vec::new();
        for i in 0..20 {
            if i % 2 == 0 {
                let p = a
                    .alloc_data(fa.map(|p| p.block), Some(0), 0, &mut rng)
                    .unwrap();
                a_blocks.push(p.block);
                fa = Some(p);
            } else {
                let p = a
                    .alloc_data(fb.map(|p| p.block), Some(0), 0, &mut rng)
                    .unwrap();
                fb = Some(p);
            }
        }
        let contiguous = a_blocks.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            contiguous < a_blocks.len() - 1,
            "interleaving must fragment: {a_blocks:?}"
        );
    }
}
