//! Zipf popularity model and online estimator — re-exported from
//! [`cras_core::cachepolicy`].
//!
//! The model moved into `cras-core` when the popularity-aware cache
//! manager (DESIGN §16) started ranking titles for prefix residency:
//! placement (here) and caching (in the server) must agree on what
//! "hot" means, so they share one estimator implementation. This module
//! keeps the cluster-side paths (`cras_cluster::popularity::…`) stable.
//!
//! The gateway uses the model two ways:
//!
//! * at **placement** time, a title's catalog rank decides its replica
//!   count — the head of the distribution is replicated to `k` shards,
//!   the tail gets one copy (popularity-weighted placement);
//! * at **run** time, an online estimator counts actual opens per
//!   title, so the reported hot set reflects observed traffic, not just
//!   the prior (and a longer-lived system would re-replicate from it).

pub use cras_core::cachepolicy::{
    head_share, zipf_cdf, zipf_rank, zipf_weight, PopularityEstimator,
};
