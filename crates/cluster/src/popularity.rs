//! Zipf popularity model and online estimator.
//!
//! Video-on-demand catalogs are sharply skewed: the classic model is a
//! Zipf law where the `r`-th most popular of `n` titles draws a
//! `1/r^theta` share of requests. The gateway uses the model two ways:
//!
//! * at **placement** time, a title's catalog rank decides its replica
//!   count — the head of the distribution is replicated to `k` shards,
//!   the tail gets one copy (popularity-weighted placement);
//! * at **run** time, an online estimator counts actual opens per
//!   title, so the reported hot set reflects observed traffic, not just
//!   the prior (and a longer-lived system would re-replicate from it).

use std::collections::BTreeMap;

/// Unnormalized Zipf weight of rank `r` (0-based) with exponent
/// `theta`.
pub fn zipf_weight(rank: usize, theta: f64) -> f64 {
    1.0 / ((rank + 1) as f64).powf(theta)
}

/// Cumulative request share of the `head` hottest titles out of `n`
/// under Zipf(`theta`) — how much traffic replication covers.
pub fn head_share(head: usize, n: usize, theta: f64) -> f64 {
    let total: f64 = (0..n).map(|r| zipf_weight(r, theta)).sum();
    let hot: f64 = (0..head.min(n)).map(|r| zipf_weight(r, theta)).sum();
    if total > 0.0 {
        hot / total
    } else {
        0.0
    }
}

/// Cumulative distribution for drawing Zipf-distributed ranks by
/// inverse-CDF sampling: `cdf[r]` is the probability of rank `<= r`.
pub fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for r in 0..n {
        acc += zipf_weight(r, theta);
        cdf.push(acc);
    }
    let total = *cdf.last().unwrap_or(&1.0);
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Draws a rank from `cdf` (as built by [`zipf_cdf`]) given a uniform
/// sample in `[0, 1)`.
pub fn zipf_rank(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u)
        .min(cdf.len().saturating_sub(1))
}

/// Online open-count estimator. Iteration order is `BTreeMap`'s, so
/// every report it produces is deterministic.
#[derive(Clone, Debug, Default)]
pub struct PopularityEstimator {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl PopularityEstimator {
    /// Creates an empty estimator.
    pub fn new() -> PopularityEstimator {
        PopularityEstimator::default()
    }

    /// Records one open of `title`.
    pub fn observe(&mut self, title: &str) {
        *self.counts.entry(title.to_string()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Opens observed for `title`.
    pub fn count(&self, title: &str) -> u64 {
        self.counts.get(title).copied().unwrap_or(0)
    }

    /// Total opens observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct titles observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most-opened titles, most popular first; ties broken by
    /// title name so the report is stable across runs.
    pub fn top(&self, k: usize) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.counts.iter().map(|(t, &c)| (t.as_str(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(k);
        v
    }

    /// Observed request share of the `k` most-opened titles.
    pub fn observed_head_share(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hot: u64 = self.top(k).iter().map(|&(_, c)| c).sum();
        hot as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_head_concentrates() {
        // Under Zipf(1.0) over 1000 titles, the top 32 carry a large
        // minority of all requests — the premise of hot replication.
        let share = head_share(32, 1000, 1.0);
        assert!((0.40..0.60).contains(&share), "head share {share:.3}");
        assert!(head_share(1000, 1000, 1.0) > 0.999);
    }

    #[test]
    fn cdf_inversion_is_monotone_and_in_range() {
        let cdf = zipf_cdf(100, 1.0);
        assert_eq!(zipf_rank(&cdf, 0.0), 0);
        assert_eq!(zipf_rank(&cdf, 0.999_999), 99);
        let mut last = 0;
        for i in 0..=100 {
            let r = zipf_rank(&cdf, i as f64 / 100.0);
            assert!(r >= last);
            last = r;
        }
    }

    #[test]
    fn estimator_orders_by_count_then_name() {
        let mut e = PopularityEstimator::new();
        for _ in 0..3 {
            e.observe("b");
        }
        for _ in 0..3 {
            e.observe("a");
        }
        e.observe("c");
        assert_eq!(e.top(2), vec![("a", 3), ("b", 3)]);
        assert_eq!(e.total(), 7);
        assert_eq!(e.distinct(), 3);
        assert!((e.observed_head_share(2) - 6.0 / 7.0).abs() < 1e-12);
    }
}
