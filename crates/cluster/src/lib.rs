//! `cras-cluster` — a sharded continuous-media cluster built from N
//! independent single-server [`System`](cras_sys::System)s behind one
//! placement gateway.
//!
//! The paper's server tops out at a dozen-odd streams per spindle; the
//! cluster scales *titles and spindles together* by sharding the
//! catalog. Disk load then grows with shards and distinct titles, not
//! with viewers — the interval cache inside each shard absorbs repeat
//! viewers of the titles that shard owns.
//!
//! * [`ring`] — deterministic consistent-hash ring: title → replica
//!   shards, stable under shard addition/removal.
//! * [`popularity`] — Zipf weights and the online open-count estimator
//!   behind popularity-weighted replication.
//! * [`gateway`] — [`Cluster`]: placement, least-loaded replica
//!   routing, whole-shard kill + failover, and barrier-synchronous
//!   lockstep or parallel stepping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gateway;
pub mod popularity;
pub mod ring;

pub use gateway::{
    Cluster, ClusterConfig, FailoverReport, OpenError, RetryStats, Session, SessionId, Shard,
    Stepping, TitleInfo,
};
pub use popularity::{head_share, zipf_cdf, zipf_rank, zipf_weight, PopularityEstimator};
pub use ring::{title_point, Ring};
