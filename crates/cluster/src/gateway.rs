//! The placement gateway: N independent [`System`] shards behind one
//! deterministic front door.
//!
//! Each shard is a complete CRAS server — its own volume set, interval
//! cache, admission control and transition journal. The gateway owns
//! placement and routing policy only; it never reaches into a shard's
//! event loop:
//!
//! * **Placement** — a title's replica shards come from the consistent
//!   hash ring; its replica *count* comes from its popularity rank
//!   (hot head of the Zipf catalog → `replicas` copies, tail → one).
//! * **Routing** — an open goes to the live replica with the fewest
//!   admitted streams, ties broken toward the most recent slack
//!   (exported by [`System::load_signal`]), then by shard id. If that
//!   shard's admission test refuses, the next candidate is tried.
//! * **Failover** — [`Cluster::kill_shard`] fails every volume of the
//!   victim at once, stops stepping it, and re-opens each of its active
//!   sessions on the best surviving replica. Titles without a surviving
//!   copy are reported lost. Single-volume faults *inside* a shard stay
//!   invisible here: mirror/parity redundancy absorbs them locally.
//!
//! Stepping is barrier-synchronous: every live shard runs to the next
//! barrier before any gateway action happens. Because shards share no
//! state between barriers, [`Stepping::Parallel`] (one thread per shard
//! per quantum) replays the exact per-shard event sequences of
//! [`Stepping::Lockstep`] — byte-identical metrics, checked in tests.

use std::collections::BTreeMap;

use cras_core::AdmissionError;
use cras_media::{Movie, StreamProfile};
use cras_sim::{Duration, Instant};
use cras_sys::player::PlayerStats;
use cras_sys::{ClientId, ShardLoad, SysConfig, System};

use crate::popularity::PopularityEstimator;
use crate::ring::{mix, Ring};

/// How the gateway steps its shards between barriers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stepping {
    /// One shard after another on the calling thread.
    Lockstep,
    /// One thread per live shard per quantum; the barrier joins them.
    /// First real use of the pure-transition seam: a shard's step
    /// touches only its own `System`.
    Parallel,
}

/// Cluster construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of shards.
    pub shards: usize,
    /// Per-shard system configuration. Each shard reseeds
    /// `base.seed` with its id so shards are independent but the
    /// cluster as a whole replays from one seed.
    pub base: SysConfig,
    /// Replica count for hot titles (tail titles get one copy).
    pub replicas: usize,
    /// How many of the hottest catalog ranks count as hot.
    pub hot_titles: usize,
    /// Virtual nodes per shard on the placement ring.
    pub vnodes: usize,
    /// Per-shard stream ceiling enforced by routing (`None` = only the
    /// shards' own admission tests gate opens). A shard's disk admission
    /// bounds spindle time and the cache bounds memory, but neither
    /// charges the CPU a stream costs; past the CPU's capacity the
    /// request scheduler starves and every stream degrades at once. The
    /// gateway turns that cliff into a rejection instead.
    pub stream_cap: Option<usize>,
    /// Synchronization quantum between shard barriers.
    pub barrier: Duration,
    /// Lockstep or one-thread-per-shard stepping.
    pub stepping: Stepping,
    /// How long a rejected open waits in the gateway's retry queue
    /// before it is given up. At every barrier the gateway re-tries
    /// queued opens against the current load; a burst that momentarily
    /// exceeds capacity is absorbed instead of bounced. `ZERO` disables
    /// queueing and [`Cluster::open`] fails fast as before.
    pub retry_window: Duration,
}

impl ClusterConfig {
    /// A `shards`-wide cluster over `base`, with 2-way hot replication,
    /// a 32-title hot set, and one admission interval per barrier.
    pub fn new(shards: usize, base: SysConfig) -> ClusterConfig {
        ClusterConfig {
            shards,
            base,
            replicas: 2,
            hot_titles: 32,
            vnodes: 64,
            stream_cap: None,
            barrier: base.server.interval,
            stepping: Stepping::Lockstep,
            retry_window: Duration::ZERO,
        }
    }
}

/// One shard: a full [`System`] plus its gateway-side liveness flag.
pub struct Shard {
    /// Shard id (index into the cluster).
    pub id: u32,
    /// The complete single-server system.
    pub sys: System,
    alive: bool,
}

impl Shard {
    /// Whether the gateway considers this shard live (dead shards are
    /// not stepped and receive no opens).
    pub fn is_alive(&self) -> bool {
        self.alive
    }
}

/// A title's placement across the cluster.
#[derive(Clone, Debug)]
pub struct TitleInfo {
    /// Popularity rank used at placement time (0 = hottest).
    pub rank: usize,
    /// Shards holding a copy, ring order (primary first).
    pub replicas: Vec<u32>,
    /// The per-shard recording handle.
    movies: BTreeMap<u32, Movie>,
}

/// Handle for an open viewer session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// A viewer session as the gateway tracks it.
#[derive(Clone, Debug)]
pub struct Session {
    /// Title being played.
    pub title: String,
    /// Shard currently serving it.
    pub shard: u32,
    /// Player client id inside that shard.
    pub client: ClientId,
    /// Whether a whole-shard failover moved this session.
    pub rerouted: bool,
    /// Whether the session was lost to a shard death (no surviving
    /// replica, or every survivor refused admission), or expired in the
    /// retry queue without ever being admitted.
    pub lost: bool,
    /// Whether the session is parked in the gateway's retry queue
    /// (rejected at open, waiting for capacity). `shard` and `client`
    /// are meaningless while this is set.
    pub queued: bool,
}

/// One open waiting in the gateway's retry queue.
struct PendingOpen {
    session: u64,
    title: String,
    deadline: Instant,
}

/// Counters for the gateway-side open retry queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Opens parked in the queue after an initial rejection.
    pub queued: u64,
    /// Queued opens later admitted within the retry window.
    pub admitted: u64,
    /// Queued opens that stayed rejected until the window elapsed.
    pub expired: u64,
    /// Queued opens dropped because every replica shard died.
    pub purged: u64,
    /// Parked (rebuffering) viewers resumed by a barrier retry sweep.
    pub resumed: u64,
}

/// Why [`Cluster::open`] refused a session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OpenError {
    /// The title was never added to the catalog.
    UnknownTitle,
    /// Every shard holding the title is dead.
    AllReplicasDown,
    /// Every live replica sits at the gateway's `stream_cap`.
    AtCapacity,
    /// Every live replica's admission test refused (last error shown).
    Rejected(AdmissionError),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::UnknownTitle => write!(f, "unknown title"),
            OpenError::AllReplicasDown => write!(f, "every replica shard is dead"),
            OpenError::AtCapacity => write!(f, "every live replica is at the stream cap"),
            OpenError::Rejected(e) => write!(f, "every live replica refused: {e}"),
        }
    }
}

impl std::error::Error for OpenError {}

/// What [`Cluster::kill_shard`] did with the victim's sessions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailoverReport {
    /// Active sessions the victim was serving at the kill.
    pub orphaned: usize,
    /// Re-admitted on a surviving replica shard.
    pub rerouted: usize,
    /// Already finished playback; nothing to move.
    pub finished: usize,
    /// Lost: no surviving replica holds the title.
    pub lost_no_replica: usize,
    /// Lost: survivors hold the title but all refused admission.
    pub lost_rejected: usize,
}

/// The sharded gateway.
pub struct Cluster {
    cfg: ClusterConfig,
    shards: Vec<Shard>,
    ring: Ring,
    titles: BTreeMap<String, TitleInfo>,
    sessions: BTreeMap<u64, Session>,
    next_session: u64,
    popularity: PopularityEstimator,
    pending: Vec<PendingOpen>,
    retry_stats: RetryStats,
    now: Instant,
    /// Next barrier at which parked viewers get an admission retry.
    resume_at: Instant,
}

impl Cluster {
    /// Builds the cluster: `cfg.shards` independent systems, each
    /// seeded from `cfg.base.seed` mixed with its shard id.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        assert!(cfg.shards > 0, "a cluster needs at least one shard");
        assert!(
            cfg.replicas <= cfg.shards,
            "cannot hold more replicas than shards"
        );
        let shards = (0..cfg.shards as u32)
            .map(|id| {
                let mut sc = cfg.base;
                sc.seed = cfg.base.seed ^ mix(0x5AD0 + id as u64);
                Shard {
                    id,
                    sys: System::new(sc),
                    alive: true,
                }
            })
            .collect();
        Cluster {
            ring: Ring::new(0..cfg.shards as u32, cfg.vnodes),
            cfg,
            shards,
            titles: BTreeMap::new(),
            sessions: BTreeMap::new(),
            next_session: 0,
            popularity: PopularityEstimator::new(),
            pending: Vec::new(),
            retry_stats: RetryStats::default(),
            now: Instant::ZERO,
            resume_at: Instant::ZERO,
        }
    }

    /// The cluster's barrier clock.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// All shards, dead ones included.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Live shard count.
    pub fn alive_count(&self) -> usize {
        self.shards.iter().filter(|s| s.alive).count()
    }

    /// The online popularity estimator (fed by every open request).
    pub fn popularity(&self) -> &PopularityEstimator {
        &self.popularity
    }

    /// A title's placement, if it is in the catalog.
    pub fn title(&self, name: &str) -> Option<&TitleInfo> {
        self.titles.get(name)
    }

    /// Adds `name` to the catalog at popularity `rank` (0 = hottest)
    /// and records it on its replica shards. Hot ranks
    /// (`rank < cfg.hot_titles`) get `cfg.replicas` copies on distinct
    /// shards; the tail gets one. Returns the replica shard ids.
    pub fn add_title(
        &mut self,
        name: &str,
        profile: &StreamProfile,
        secs: f64,
        rank: usize,
    ) -> Vec<u32> {
        let k = if rank < self.cfg.hot_titles {
            self.cfg.replicas.max(1)
        } else {
            1
        };
        let replicas = self.ring.replicas(name, k);
        assert!(!replicas.is_empty(), "no live shard to place on");
        let mut movies = BTreeMap::new();
        for &s in &replicas {
            let m = self.shards[s as usize]
                .sys
                .record_movie(name, *profile, secs);
            movies.insert(s, m);
        }
        self.titles.insert(
            name.to_string(),
            TitleInfo {
                rank,
                replicas: replicas.clone(),
                movies,
            },
        );
        replicas
    }

    /// Candidate replicas for `title`, best first: live shards holding
    /// a copy. When prefix residency is on (DESIGN §16) the replica
    /// whose cache already pins the title's prefix sorts first — that
    /// shard can admit the open deferred (zero disk shares) and batch
    /// it onto an in-flight read stream, so concentrating a hot title's
    /// viewers there is cheaper than spreading them. The remaining
    /// order is least recent volume lag (a shard whose disks are
    /// already missing deadlines is a worse host than one with more
    /// streams but healthy volumes — open counts alone can't see
    /// that), then fewest admitted streams, then most recent slack,
    /// then shard id.
    fn route_candidates(&self, title: &str, info: &TitleInfo) -> Vec<u32> {
        let prefix_on = self.cfg.base.server.prefix_secs > Duration::ZERO;
        let mut cands: Vec<u32> = info
            .replicas
            .iter()
            .copied()
            .filter(|&s| self.shards[s as usize].alive)
            .filter(|&s| match self.cfg.stream_cap {
                Some(cap) => self.shards[s as usize].sys.cras.stream_count() < cap,
                None => true,
            })
            .collect();
        cands.sort_by(|&a, &b| {
            let pa = prefix_on && self.shards[a as usize].sys.cras.cache().has_prefix(title);
            let pb = prefix_on && self.shards[b as usize].sys.cras.cache().has_prefix(title);
            let la: ShardLoad = self.shards[a as usize].sys.load_signal();
            let lb: ShardLoad = self.shards[b as usize].sys.load_signal();
            pb.cmp(&pa)
                .then(la.recent_lag.total_cmp(&lb.recent_lag))
                .then(la.streams.cmp(&lb.streams))
                .then(lb.recent_slack.total_cmp(&la.recent_slack))
                .then(a.cmp(&b))
        });
        cands
    }

    /// Admits `title` on the best live replica and starts playback.
    fn route_open(&mut self, title: &str) -> Result<(u32, ClientId), OpenError> {
        let info = self.titles.get(title).ok_or(OpenError::UnknownTitle)?;
        if !info.replicas.iter().any(|&s| self.shards[s as usize].alive) {
            return Err(OpenError::AllReplicasDown);
        }
        let mut last = None;
        for s in self.route_candidates(title, info) {
            let movie = self.titles[title].movies[&s].clone();
            let sh = &mut self.shards[s as usize];
            match sh.sys.add_cras_player(&movie, 1) {
                Ok(c) => {
                    sh.sys.start_playback(c);
                    return Ok((s, c));
                }
                Err(e) => last = Some(e),
            }
        }
        // The typed error is guaranteed by construction: an empty
        // candidate list (every live replica excluded by the stream
        // cap) is `AtCapacity`, a non-empty one whose every admission
        // failed carries the last admission error. No unwrap — a list
        // that turns out empty can never panic the gateway.
        Err(match last {
            Some(e) => OpenError::Rejected(e),
            None => OpenError::AtCapacity,
        })
    }

    /// Opens a viewer session for `title`, routing to the least-loaded
    /// live replica (prefix holder first for hot titles). Every request
    /// — admitted or refused — feeds the popularity estimator.
    ///
    /// With `cfg.retry_window > ZERO`, a rejection does not fail the
    /// open: the session is parked in the retry queue (`queued` set)
    /// and re-tried at every barrier until it is admitted or the window
    /// elapses — then it is marked `lost`.
    pub fn open(&mut self, title: &str) -> Result<SessionId, OpenError> {
        self.popularity.observe(title);
        let (shard, client, queued) = match self.route_open(title) {
            Ok((shard, client)) => (shard, client, false),
            Err(OpenError::Rejected(_) | OpenError::AtCapacity)
                if self.cfg.retry_window > Duration::ZERO =>
            {
                (u32::MAX, ClientId(u32::MAX), true)
            }
            Err(e) => return Err(e),
        };
        let id = self.next_session;
        self.next_session += 1;
        self.sessions.insert(
            id,
            Session {
                title: title.to_string(),
                shard,
                client,
                rerouted: false,
                lost: false,
                queued,
            },
        );
        if queued {
            self.retry_stats.queued += 1;
            self.pending.push(PendingOpen {
                session: id,
                title: title.to_string(),
                deadline: self.now + self.cfg.retry_window,
            });
        }
        Ok(SessionId(id))
    }

    /// Re-tries every queued open against current capacity. Runs at
    /// each barrier: admitted opens leave the queue and start playback,
    /// still-rejected ones wait until their deadline, and opens whose
    /// last replica died (or whose deadline passed) are marked lost.
    fn drain_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            match self.route_open(&p.title) {
                Ok((shard, client)) => {
                    self.retry_stats.admitted += 1;
                    let s = self.sessions.get_mut(&p.session).expect("session exists");
                    s.shard = shard;
                    s.client = client;
                    s.queued = false;
                }
                Err(OpenError::Rejected(_) | OpenError::AtCapacity) if self.now < p.deadline => {
                    self.pending.push(p)
                }
                Err(e) => {
                    if matches!(e, OpenError::Rejected(_) | OpenError::AtCapacity) {
                        self.retry_stats.expired += 1;
                    } else {
                        self.retry_stats.purged += 1;
                    }
                    let s = self.sessions.get_mut(&p.session).expect("session exists");
                    s.queued = false;
                    s.lost = true;
                }
            }
        }
    }

    /// Retries admission for every parked (rebuffering) viewer on the
    /// live shards. A parked stream holds no admission shares and its
    /// clock is frozen, so each retry re-runs the full feed ladder
    /// (disk share, then cache window) against current load and
    /// resumes playback from the frozen position on success. Runs at
    /// barriers, throttled to one sweep per admission interval.
    fn resume_parked(&mut self) {
        for sh in self.shards.iter_mut().filter(|s| s.alive) {
            let paused: Vec<u32> = sh
                .sys
                .players
                .iter()
                .filter(|(_, p)| p.paused && !p.done)
                .map(|(&id, _)| id)
                .collect();
            for id in paused {
                if sh.sys.retry_parked(ClientId(id)) {
                    self.retry_stats.resumed += 1;
                }
            }
        }
    }

    /// Retry-queue counters so far.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Number of opens currently parked in the retry queue.
    pub fn pending_opens(&self) -> usize {
        self.pending.len()
    }

    /// Ends a session: the shard closes the stream (`crs_close`),
    /// freeing its admission shares and its slot under `stream_cap`. A
    /// queued session simply leaves the retry queue.
    pub fn close(&mut self, sid: SessionId) {
        if let Some(s) = self.sessions.get(&sid.0) {
            if s.queued {
                self.pending.retain(|p| p.session != sid.0);
            } else if !s.lost {
                let (shard, client) = (s.shard, s.client);
                if self.shards[shard as usize].alive {
                    self.shards[shard as usize].sys.close_playback(client);
                }
            }
        }
        self.sessions.remove(&sid.0);
    }

    /// The gateway's view of a session.
    pub fn session(&self, sid: SessionId) -> Option<&Session> {
        self.sessions.get(&sid.0)
    }

    /// All sessions in id order.
    pub fn sessions(&self) -> impl Iterator<Item = (SessionId, &Session)> {
        self.sessions.iter().map(|(&id, s)| (SessionId(id), s))
    }

    /// Player statistics for a session, if its shard is live and the
    /// session was not lost.
    pub fn session_stats(&self, sid: SessionId) -> Option<&PlayerStats> {
        let s = self.sessions.get(&sid.0)?;
        if s.lost || s.queued || !self.shards[s.shard as usize].alive {
            return None;
        }
        self.shards[s.shard as usize]
            .sys
            .players
            .get(&s.client.0)
            .map(|p| &p.stats)
    }

    /// Kills shard `victim` whole: every volume fails fast, the shard
    /// stops being stepped, and each session it was serving is
    /// re-admitted on the best surviving replica of its title (playback
    /// restarts from the top, as after a set-top reconnect). Titles
    /// with no surviving copy are reported lost.
    pub fn kill_shard(&mut self, victim: u32) -> FailoverReport {
        let idx = victim as usize;
        assert!(self.shards[idx].alive, "shard {victim} is already dead");
        self.shards[idx].alive = false;
        self.shards[idx].sys.fail_shard();
        self.ring.remove_shard(victim);
        // Purge queued opens whose title lost its last live replica:
        // no amount of waiting will admit them now.
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            let has_live = self
                .titles
                .get(&p.title)
                .is_some_and(|i| i.replicas.iter().any(|&s| self.shards[s as usize].alive));
            if has_live {
                self.pending.push(p);
            } else {
                self.retry_stats.purged += 1;
                let s = self.sessions.get_mut(&p.session).expect("session exists");
                s.queued = false;
                s.lost = true;
            }
        }
        let mut report = FailoverReport::default();
        let orphans: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.shard == victim && !s.lost)
            .map(|(&id, _)| id)
            .collect();
        for id in orphans {
            let (title, client) = {
                let s = &self.sessions[&id];
                (s.title.clone(), s.client)
            };
            let done = self.shards[idx]
                .sys
                .players
                .get(&client.0)
                .is_none_or(|p| p.done);
            if done {
                report.finished += 1;
                continue;
            }
            report.orphaned += 1;
            match self.route_open(&title) {
                Ok((shard, client)) => {
                    report.rerouted += 1;
                    let s = self.sessions.get_mut(&id).expect("session exists");
                    s.shard = shard;
                    s.client = client;
                    s.rerouted = true;
                }
                Err(e) => {
                    if matches!(e, OpenError::Rejected(_) | OpenError::AtCapacity) {
                        report.lost_rejected += 1;
                    } else {
                        report.lost_no_replica += 1;
                    }
                    self.sessions.get_mut(&id).expect("session exists").lost = true;
                }
            }
        }
        report
    }

    /// Steps one shard to the barrier and aligns its clock with it.
    fn step_shard(sh: &mut Shard, t: Instant) {
        sh.sys.run_until(t);
        if sh.sys.now() < t {
            // Safe: after `run_until(t)` every pending event is past `t`.
            sh.sys.engine.advance_to(t);
        }
    }

    /// Runs every live shard to the next barrier, repeatedly, until the
    /// cluster clock reaches `t`. Gateway actions (opens, kills) only
    /// ever happen between calls, i.e. at barriers — which is why
    /// parallel stepping cannot change any shard's event sequence.
    pub fn run_until(&mut self, t: Instant) {
        while self.now < t {
            let next = t.min(self.now + self.cfg.barrier);
            match self.cfg.stepping {
                Stepping::Lockstep => {
                    for sh in self.shards.iter_mut().filter(|s| s.alive) {
                        Self::step_shard(sh, next);
                    }
                }
                Stepping::Parallel => {
                    std::thread::scope(|scope| {
                        for sh in self.shards.iter_mut().filter(|s| s.alive) {
                            scope.spawn(move || Self::step_shard(sh, next));
                        }
                    });
                }
            }
            self.now = next;
            self.drain_pending();
            if self.now >= self.resume_at {
                self.resume_parked();
                self.resume_at = self.now + self.cfg.base.server.interval;
            }
        }
    }

    /// Runs for `d` from the cluster clock.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.now + d);
    }

    /// Per-shard canonical metrics serializations (dead shards
    /// included), the unit of the determinism tests.
    pub fn canonical_metrics(&self) -> Vec<String> {
        self.shards
            .iter()
            .map(|s| s.sys.metrics.canonical_json())
            .collect()
    }

    /// Total frames shown by sessions still served by live shards.
    pub fn live_frames_shown(&self) -> u64 {
        self.live_stats(|st| st.frames_shown)
    }

    /// Total frames dropped by sessions still served by live shards.
    pub fn live_frames_dropped(&self) -> u64 {
        self.live_stats(|st| st.frames_dropped)
    }

    fn live_stats(&self, f: impl Fn(&PlayerStats) -> u64) -> u64 {
        self.sessions
            .keys()
            .filter_map(|&id| self.session_stats(SessionId(id)))
            .map(f)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cras_media::StreamProfile;

    fn small_cluster(stepping: Stepping) -> Cluster {
        let mut base = SysConfig {
            seed: 0xC1_05_7E,
            ..SysConfig::default()
        };
        base.server.volumes = 2;
        let mut cfg = ClusterConfig::new(3, base);
        cfg.stepping = stepping;
        cfg.hot_titles = 2;
        Cluster::new(cfg)
    }

    fn drive(stepping: Stepping) -> (Vec<String>, u64, u64) {
        let mut cl = small_cluster(stepping);
        for (rank, name) in ["a.mov", "b.mov", "c.mov", "d.mov"].iter().enumerate() {
            cl.add_title(name, &StreamProfile::mpeg1(), 30.0, rank);
        }
        let mut opened = 0;
        for i in 0..12 {
            let title = ["a.mov", "a.mov", "b.mov", "c.mov"][i % 4];
            if cl.open(title).is_ok() {
                opened += 1;
            }
            cl.run_for(Duration::from_millis(400));
        }
        cl.run_for(Duration::from_secs(5));
        (cl.canonical_metrics(), opened, cl.live_frames_shown())
    }

    #[test]
    fn hot_titles_get_more_replicas_than_tail() {
        let mut cl = small_cluster(Stepping::Lockstep);
        let hot = cl.add_title("hot.mov", &StreamProfile::mpeg1(), 10.0, 0);
        let cold = cl.add_title("cold.mov", &StreamProfile::mpeg1(), 10.0, 99);
        assert_eq!(hot.len(), 2);
        let mut d = hot.clone();
        d.dedup();
        assert_eq!(d.len(), 2, "replicas must land on distinct shards");
        assert_eq!(cold.len(), 1);
    }

    #[test]
    fn parallel_stepping_matches_lockstep_byte_for_byte() {
        let (a, opened_a, shown_a) = drive(Stepping::Lockstep);
        let (b, opened_b, shown_b) = drive(Stepping::Parallel);
        assert_eq!(opened_a, opened_b);
        assert_eq!(shown_a, shown_b);
        assert_eq!(a, b, "per-shard canonical metrics diverged");
    }

    #[test]
    fn replay_is_deterministic() {
        assert_eq!(drive(Stepping::Lockstep), drive(Stepping::Lockstep));
    }

    #[test]
    fn shard_kill_reroutes_replicated_titles() {
        let mut cl = small_cluster(Stepping::Lockstep);
        cl.add_title("hot.mov", &StreamProfile::mpeg1(), 60.0, 0);
        let sid = cl.open("hot.mov").expect("admitted");
        cl.run_for(Duration::from_secs(2));
        let victim = cl.session(sid).unwrap().shard;
        let report = cl.kill_shard(victim);
        assert_eq!(report.orphaned, 1);
        assert_eq!(report.rerouted, 1);
        let s = cl.session(sid).unwrap();
        assert!(s.rerouted && !s.lost);
        assert_ne!(s.shard, victim);
        // The survivor actually serves it: frames advance after the kill.
        cl.run_for(Duration::from_secs(4));
        let shown = cl.session_stats(sid).map(|st| st.frames_shown);
        assert!(shown.unwrap_or(0) > 0, "rerouted session never played");
        assert_eq!(cl.alive_count(), 2);
    }

    #[test]
    fn shard_kill_loses_unreplicated_titles() {
        let mut cl = small_cluster(Stepping::Lockstep);
        cl.add_title("cold.mov", &StreamProfile::mpeg1(), 60.0, 50);
        let sid = cl.open("cold.mov").expect("admitted");
        cl.run_for(Duration::from_secs(1));
        let victim = cl.session(sid).unwrap().shard;
        let report = cl.kill_shard(victim);
        assert_eq!(report.lost_no_replica, 1);
        assert!(cl.session(sid).unwrap().lost);
        assert!(cl.session_stats(sid).is_none());
        assert_eq!(cl.open("cold.mov"), Err(OpenError::AllReplicasDown));
        // The cluster keeps running without the dead shard.
        cl.run_for(Duration::from_secs(2));
    }

    #[test]
    fn prefix_holder_attracts_same_title_opens() {
        let mut cl = small_cluster(Stepping::Lockstep);
        cl.cfg.base.server.cache_budget = 64 << 20;
        cl.cfg.base.server.prefix_secs = Duration::from_secs(10);
        cl.cfg.base.server.hot_set = 4;
        for sh in &mut cl.shards {
            let mut sc = cl.cfg.base;
            sc.seed = cl.cfg.base.seed ^ mix(0x5AD0 + sh.id as u64);
            sh.sys = System::new(sc);
        }
        cl.add_title("hot.mov", &StreamProfile::mpeg1(), 30.0, 0);
        let mut shards = Vec::new();
        for _ in 0..4 {
            let sid = cl.open("hot.mov").expect("admitted");
            shards.push(cl.session(sid).unwrap().shard);
            cl.run_for(Duration::from_millis(100));
        }
        // The first open pins the prefix on one replica; every later
        // same-title open sticks there instead of alternating.
        assert!(
            shards.iter().all(|&s| s == shards[0]),
            "opens spread away from the prefix holder: {shards:?}"
        );
    }

    #[test]
    fn opens_avoid_the_replica_with_recent_volume_lag() {
        use cras_core::{IntervalReport, ReadId, ReadReq, StreamId};
        use cras_disk::{Completed, DiskRequest, ServiceBreakdown, VolumeId};
        use cras_sys::DiskTag;

        let mut cl = small_cluster(Stepping::Lockstep);
        cl.add_title("hot.mov", &StreamProfile::mpeg1(), 30.0, 0);
        let before = {
            let info = cl.titles.get("hot.mov").unwrap();
            cl.route_candidates("hot.mov", info)
        };
        assert_eq!(before.len(), 2, "hot title has two live replicas");

        // Feed the preferred replica a completed interval that ran far
        // behind its calculated I/O time: its volume-lag signal rises
        // while its stream count stays zero — the signal open counts
        // cannot see.
        let rid = ReadId(900_000);
        let rep = IntervalReport {
            index: 0,
            reqs: vec![ReadReq {
                id: rid,
                stream: StreamId(0),
                volume: VolumeId(0),
                block: 0,
                nblocks: 8,
            }],
            posted_chunks: 0,
            overran: false,
            calculated_io_time: 0.001,
            per_volume_calculated: vec![0.001, 0.0],
            degraded_streams: 0,
            steered_streams: 0,
            lost_streams: 0,
            cache_served_streams: 0,
            deferred_reserved: Vec::new(),
            cache_rejected_titles: Vec::new(),
            parked_streams: Vec::new(),
        };
        let m = &mut cl.shards[before[0] as usize].sys.metrics;
        m.on_interval(&rep, Instant::ZERO);
        m.on_cras_read_done(
            rid,
            &Completed {
                req: DiskRequest::rt_read(0, 8, DiskTag::Cras(rid)),
                submitted_at: Instant::ZERO,
                started_at: Instant::ZERO,
                finished_at: Instant::ZERO + Duration::from_millis(200),
                breakdown: ServiceBreakdown::default(),
                failed: false,
            },
        );

        let after = {
            let info = cl.titles.get("hot.mov").unwrap();
            cl.route_candidates("hot.mov", info)
        };
        assert_eq!(
            after,
            vec![before[1], before[0]],
            "the lagging replica must sort behind the healthy one"
        );
        let sid = cl.open("hot.mov").expect("admitted");
        assert_eq!(cl.session(sid).unwrap().shard, before[1]);
    }

    #[test]
    fn rejected_open_queues_and_admits_when_capacity_frees() {
        let mut base = SysConfig {
            seed: 0x9E7,
            ..SysConfig::default()
        };
        base.server.volumes = 2;
        let mut cfg = ClusterConfig::new(3, base);
        cfg.hot_titles = 2;
        cfg.stream_cap = Some(1);
        cfg.retry_window = Duration::from_secs(5);
        let mut cl = Cluster::new(cfg);
        cl.add_title("q.mov", &StreamProfile::mpeg1(), 30.0, 0);
        // Two replicas, cap 1 each: the first two opens admit, the
        // third queues instead of failing.
        let a = cl.open("q.mov").expect("admitted");
        let b = cl.open("q.mov").expect("admitted");
        let c = cl.open("q.mov").expect("queued, not refused");
        assert!(cl.session(c).unwrap().queued);
        assert!(cl.session_stats(c).is_none());
        assert_eq!(cl.pending_opens(), 1);
        assert_eq!(cl.retry_stats().queued, 1);
        assert!(!cl.session(a).unwrap().queued && !cl.session(b).unwrap().queued);
        // Freeing a slot lets the next barrier drain the queue.
        cl.close(a);
        cl.run_for(Duration::from_secs(1));
        let s = cl.session(c).unwrap();
        assert!(!s.queued && !s.lost, "queued open never admitted");
        assert_eq!(cl.pending_opens(), 0);
        assert_eq!(cl.retry_stats().admitted, 1);
        // The retried session actually plays.
        cl.run_for(Duration::from_secs(4));
        assert!(cl.session_stats(c).map(|st| st.frames_shown).unwrap_or(0) > 0);
    }

    #[test]
    fn queued_open_expires_after_retry_window() {
        let mut base = SysConfig {
            seed: 0x9E8,
            ..SysConfig::default()
        };
        base.server.volumes = 2;
        let mut cfg = ClusterConfig::new(3, base);
        cfg.hot_titles = 2;
        cfg.stream_cap = Some(1);
        cfg.retry_window = Duration::from_secs(2);
        let mut cl = Cluster::new(cfg);
        cl.add_title("q.mov", &StreamProfile::mpeg1(), 60.0, 0);
        let _a = cl.open("q.mov").expect("admitted");
        let _b = cl.open("q.mov").expect("admitted");
        let c = cl.open("q.mov").expect("queued");
        assert!(cl.session(c).unwrap().queued);
        // Nobody leaves; the window elapses and the open is lost.
        cl.run_for(Duration::from_secs(3));
        let s = cl.session(c).unwrap();
        assert!(s.lost && !s.queued);
        assert_eq!(cl.retry_stats().expired, 1);
        assert_eq!(cl.pending_opens(), 0);
    }

    #[test]
    fn open_with_every_live_replica_at_cap_is_a_typed_error() {
        // Regression: with no retry window, an open whose every live
        // replica is excluded by the stream cap must come back as
        // `Err(AtCapacity)` — the route must never panic on an empty
        // candidate list.
        let mut base = SysConfig {
            seed: 0x9E9,
            ..SysConfig::default()
        };
        base.server.volumes = 2;
        let mut cfg = ClusterConfig::new(3, base);
        cfg.hot_titles = 2;
        cfg.stream_cap = Some(1);
        let mut cl = Cluster::new(cfg);
        cl.add_title("cap.mov", &StreamProfile::mpeg1(), 30.0, 0);
        let _a = cl.open("cap.mov").expect("admitted");
        let _b = cl.open("cap.mov").expect("admitted");
        assert_eq!(cl.open("cap.mov"), Err(OpenError::AtCapacity));
        // The cluster stays serviceable afterwards.
        cl.run_for(Duration::from_secs(1));
    }

    #[test]
    fn routing_balances_toward_least_loaded_replica() {
        let mut cl = small_cluster(Stepping::Lockstep);
        cl.add_title("hot.mov", &StreamProfile::mpeg1(), 30.0, 0);
        let mut by_shard = BTreeMap::new();
        for _ in 0..4 {
            let sid = cl.open("hot.mov").expect("admitted");
            *by_shard
                .entry(cl.session(sid).unwrap().shard)
                .or_insert(0usize) += 1;
            cl.run_for(Duration::from_millis(100));
        }
        // Two replicas, four viewers: the least-loaded rule alternates.
        assert_eq!(by_shard.len(), 2);
        assert!(by_shard.values().all(|&c| c == 2), "{by_shard:?}");
    }
}
