//! Consistent-hash ring assigning titles to shards.
//!
//! Each shard contributes `vnodes` points to a 64-bit hash circle; a
//! title lands on the first point clockwise of its own hash, and its
//! replicas continue clockwise to the next points owned by *distinct*
//! shards. Adding or removing a shard therefore moves only the titles
//! whose arc changed hands — about `1/N` of the catalog — while every
//! other title keeps its shard set. That stability is what makes
//! shard-level failover cheap: the survivors already hold the replicas
//! the ring said they should.
//!
//! Hashing is deliberately self-contained and deterministic (FNV-1a
//! with a splitmix64 finalizer): the std hasher is randomly seeded per
//! process, which would re-place the whole catalog on every run and
//! break byte-identical replay.

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: FNV-1a alone clusters on short keys; the mix
/// spreads points around the full circle. Also reused by the gateway to
/// derive independent per-shard seeds from the cluster seed.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic position of a title on the circle.
pub fn title_point(title: &str) -> u64 {
    mix(fnv1a(title.as_bytes()))
}

/// A consistent-hash ring over shard ids.
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, shard)` sorted by point (ties broken by shard id, which
    /// can only collide across shards with astronomically small odds).
    points: Vec<(u64, u32)>,
    vnodes: usize,
}

impl Ring {
    /// Builds a ring with `vnodes` points per shard.
    pub fn new(shards: impl IntoIterator<Item = u32>, vnodes: usize) -> Ring {
        assert!(vnodes > 0, "a shard must own at least one point");
        let mut ring = Ring {
            points: Vec::new(),
            vnodes,
        };
        for s in shards {
            ring.add_shard(s);
        }
        ring
    }

    /// Adds a shard's points. Idempotent for a shard already present.
    pub fn add_shard(&mut self, shard: u32) {
        if self.points.iter().any(|&(_, s)| s == shard) {
            return;
        }
        for v in 0..self.vnodes as u64 {
            let point = mix(fnv1a(&shard.to_le_bytes()) ^ mix(v));
            self.points.push((point, shard));
        }
        self.points.sort_unstable();
    }

    /// Removes a shard's points (a dead shard stops receiving *new*
    /// placements; titles already recorded keep their replica sets).
    pub fn remove_shard(&mut self, shard: u32) {
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Number of distinct shards on the ring.
    pub fn shard_count(&self) -> usize {
        let mut ids: Vec<u32> = self.points.iter().map(|&(_, s)| s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// The `k` distinct shards holding `title`, primary first: the walk
    /// starts at the first point clockwise of the title's hash and skips
    /// points of shards already chosen. Returns fewer than `k` when the
    /// ring has fewer distinct shards.
    pub fn replicas(&self, title: &str, k: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(k);
        if self.points.is_empty() || k == 0 {
            return out;
        }
        let p = title_point(title);
        let start = self.points.partition_point(|&(pt, _)| pt < p);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// The primary shard for `title`.
    pub fn primary(&self, title: &str) -> Option<u32> {
        self.replicas(title, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titles(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("title{i:04}.mov")).collect()
    }

    #[test]
    fn replicas_are_distinct_and_primary_first() {
        let ring = Ring::new(0..4, 64);
        for t in titles(500) {
            let r = ring.replicas(&t, 3);
            assert_eq!(r.len(), 3);
            let mut d = r.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3, "replicas collide for {t}: {r:?}");
            assert_eq!(r[0], ring.primary(&t).unwrap());
        }
    }

    #[test]
    fn assignment_stable_under_shard_addition() {
        // Adding a fifth shard to a four-shard ring must move only the
        // titles whose arc the newcomer captured — about 1/5 of the
        // catalog — and never reshuffle titles among the old shards.
        let before = Ring::new(0..4, 64);
        let mut after = before.clone();
        after.add_shard(4);
        let ts = titles(2000);
        let mut moved = 0;
        for t in &ts {
            let a = before.primary(t).unwrap();
            let b = after.primary(t).unwrap();
            if a != b {
                assert_eq!(b, 4, "{t} moved between old shards: {a} -> {b}");
                moved += 1;
            }
        }
        let frac = moved as f64 / ts.len() as f64;
        assert!(
            (0.10..=0.35).contains(&frac),
            "expected ~1/5 of titles to move, got {frac:.3}"
        );
    }

    #[test]
    fn assignment_stable_under_shard_removal() {
        // Removing a shard must move exactly the titles it owned, and
        // each of them only to the next shard on its arc.
        let before = Ring::new(0..4, 64);
        let mut after = before.clone();
        after.remove_shard(2);
        let ts = titles(2000);
        let mut moved = 0;
        for t in &ts {
            let a = before.primary(t).unwrap();
            let b = after.primary(t).unwrap();
            if a == 2 {
                assert_ne!(b, 2);
                moved += 1;
            } else {
                assert_eq!(a, b, "{t} moved although shard 2 never owned it");
            }
        }
        let frac = moved as f64 / ts.len() as f64;
        assert!(
            (0.15..=0.40).contains(&frac),
            "expected ~1/4 of titles to move, got {frac:.3}"
        );
    }

    #[test]
    fn replica_sets_stable_under_removal() {
        // For titles that did not use the removed shard, the whole
        // replica set (not just the primary) is unchanged.
        let before = Ring::new(0..5, 64);
        let mut after = before.clone();
        after.remove_shard(3);
        for t in titles(1000) {
            let a = before.replicas(&t, 2);
            if !a.contains(&3) {
                assert_eq!(a, after.replicas(&t, 2), "{t}");
            }
        }
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let ring = Ring::new(0..4, 64);
        let mut counts = [0usize; 4];
        let ts = titles(4000);
        for t in &ts {
            counts[ring.primary(t).unwrap() as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            let share = c as f64 / ts.len() as f64;
            assert!(
                (0.10..=0.45).contains(&share),
                "shard {s} owns {share:.3} of the catalog"
            );
        }
    }

    #[test]
    fn ring_walk_handles_short_rings() {
        let ring = Ring::new(0..2, 8);
        assert_eq!(ring.replicas("x", 5).len(), 2);
        let empty = Ring::new(std::iter::empty(), 8);
        assert!(empty.replicas("x", 2).is_empty());
        assert_eq!(empty.primary("x"), None);
    }
}
