//! Quickstart: record a movie, open it through CRAS, play it back at a
//! constant rate, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cras_repro::media::StreamProfile;
use cras_repro::sim::Duration;
use cras_repro::sys::{SysConfig, System};

fn main() {
    // 1. Build the system: calibrated ST32550N disk, tuned FFS, CRAS with
    //    the paper's defaults (0.5 s interval, 1 s initial delay).
    let mut sys = System::new(SysConfig::default());
    println!(
        "disk: {:.2} GB, {} cylinders",
        sys.disk().geometry().capacity_bytes() as f64 / 1e9,
        sys.disk().geometry().cylinders()
    );

    // 2. Record a 20-second MPEG-1-rate movie into the file system.
    let movie = sys.record_movie("quickstart.mov", StreamProfile::mpeg1(), 20.0);
    println!(
        "recorded {}: {} chunks, {:.2} MB, {:.0} B/s",
        movie.name,
        movie.table.len(),
        movie.table.total_bytes() as f64 / 1e6,
        movie.avg_rate()
    );

    // 3. crs_open + crs_start: the admission test runs, buffers are
    //    allocated, and pre-fetching begins.
    let client = sys
        .add_cras_player(&movie, 1)
        .expect("one MPEG-1 stream passes admission easily");
    let start = sys.start_playback(client);
    println!("admission passed; playback starts at t = {start}");
    println!(
        "server memory: {} KB (fixed 250 KB + stream buffers)",
        sys.cras.memory_bytes() / 1024
    );

    // 4. Run the simulation to the end of the movie.
    sys.run_for(Duration::from_secs(25));

    // 5. Report.
    let p = &sys.players[&client.0];
    let (mean, max) = p.delay_summary();
    println!("frames shown:   {}", p.stats.frames_shown);
    println!("frames dropped: {}", p.stats.frames_dropped);
    println!("mean delay:     {:.3} ms", mean * 1e3);
    println!("max delay:      {:.3} ms", max * 1e3);
    println!(
        "deadline overruns: {} (CRAS met every interval)",
        sys.metrics.overruns
    );
    assert_eq!(p.stats.frames_dropped, 0);
    println!("ok: constant-rate playback with zero dropped frames");
}
