//! Constant-rate recording — the paper's §4 future-work extension, live:
//! pre-allocate contiguous blocks through the file system, stage chunks
//! from a capture source, and drain them to disk at a constant rate with
//! the same interval scheduler CRAS uses for playback.
//!
//! ```text
//! cargo run --release --example recorder
//! ```

use cras_repro::core::{Recorder, ServerConfig};
use cras_repro::disk::calibrate::{calibrate, DiskParams};
use cras_repro::disk::{DiskDevice, DiskRequest};
use cras_repro::sim::{Duration, Instant};
use cras_repro::ufs::{MkfsParams, Ufs};

fn main() {
    // Calibrate and set up.
    let mut scratch: DiskDevice<u8> = DiskDevice::st32550n();
    let cal = calibrate(&mut scratch, 64 * 1024);
    let params: DiskParams = cal.params;
    let mut disk: DiskDevice<u64> = DiskDevice::st32550n();
    let geom = disk.geometry().clone();
    let mut fs = Ufs::format(&geom, MkfsParams::tuned(&geom), 1);

    // Pre-allocate 4 MB of contiguous space (§4: "allocate data blocks in
    // advance when a file is created or expanded").
    let ino = fs.create("capture.mov").expect("fresh fs");
    fs.preallocate(ino, 4 << 20).expect("plenty of space");
    let extents = fs.extent_map(ino);
    println!(
        "pre-allocated {} extents ({:.2} MB contiguous)",
        extents.len(),
        extents.iter().map(|e| e.bytes()).sum::<u64>() as f64 / 1e6
    );

    // Open a 1.5 Mbps write session.
    let mut rec = Recorder::new(params, ServerConfig::default());
    let session = rec
        .open_write(187_500.0, 6_250.0, extents)
        .expect("write admission passes");

    // Capture 10 seconds of 30 fps frames, draining every interval.
    let frame = Duration::from_secs_f64(1.0 / 30.0);
    let mut now = Instant::ZERO;
    let mut writes = 0u32;
    for tick in 0..20u64 {
        // One 0.5 s interval of captured frames arrives...
        for _ in 0..15 {
            rec.stage_chunk(session, frame, 6_250);
        }
        // ...and the interval scheduler drains it as real-time writes.
        now = Instant::ZERO + Duration::from_millis(500) * tick;
        for w in rec.interval_tick(now) {
            let fin = disk
                .submit(now, DiskRequest::rt_write(w.block, w.nblocks, w.id.0))
                .expect("sequential: disk idle between intervals");
            disk.complete(fin);
            rec.io_done(w.id);
            writes += 1;
        }
    }

    let table = rec.finalize(session);
    println!("recorded {} chunks in {} disk writes", table.len(), writes);
    println!(
        "control file: {:.1} s of media at {:.0} B/s",
        table.total_duration().as_secs_f64(),
        table.avg_rate()
    );
    println!(
        "disk busy {:.1}% of the recording time",
        100.0 * disk.stats().busy.as_secs_f64() / now.as_secs_f64()
    );
    assert_eq!(table.len(), 300);
    println!("ok: constant-rate write path works (paper §4, implemented)");
}
