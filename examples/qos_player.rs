//! Dynamic QOS control (paper §2.4): a client drops from 30 fps to
//! 10 fps mid-playback *without telling the server*. The time-driven
//! shared buffer ages skipped frames out by timestamp; nothing stalls and
//! no feedback protocol runs.
//!
//! ```text
//! cargo run --release --example qos_player
//! ```

use cras_repro::media::StreamProfile;
use cras_repro::sim::Duration;
use cras_repro::sys::{PlayerMode, SysConfig, System};

fn main() {
    let mut sys = System::new(SysConfig::default());
    let movie = sys.record_movie("qos.mov", StreamProfile::mpeg1(), 24.0);
    let client = sys.add_cras_player(&movie, 1).expect("admission passes");
    let start = sys.start_playback(client);

    // Phase 1: full rate for 10 seconds.
    sys.run_until(start + Duration::from_secs(10));
    let full = sys.players[&client.0].stats.frames_shown;
    println!("phase 1 (30 fps): {full} frames shown");

    // The QOS move: the client simply samples every third frame from the
    // shared buffer. No crs_* call happens.
    sys.players.get_mut(&client.0).expect("exists").stride = 3;
    println!("client drops to 10 fps — server not notified");

    // Phase 2: reduced rate for 10 more seconds.
    sys.run_until(start + Duration::from_secs(20));
    let p = &sys.players[&client.0];
    println!(
        "phase 2 (10 fps): {} frames shown",
        p.stats.frames_shown - full
    );

    let PlayerMode::Cras { stream } = p.mode else {
        unreachable!("cras player")
    };
    let buf = sys.cras.stream(stream).buffer.stats();
    println!("frames dropped (stalls):        {}", p.stats.frames_dropped);
    println!("chunks aged out by timestamp:   {}", buf.discarded);
    println!(
        "max frame delay:                {:.2} ms",
        p.delay_summary().1 * 1e3
    );
    println!(
        "server kept fetching at the recorded rate: {:.2} MB read",
        sys.metrics.cras_read_bytes as f64 / 1e6
    );
    assert_eq!(p.stats.frames_dropped, 0);
    println!("ok: rate change absorbed entirely by the time-driven buffer");
}
