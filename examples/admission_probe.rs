//! Admission-control walkthrough: calibrate the disk the way Appendix A
//! does, then probe how many streams fit at different interval times and
//! watch an open request get rejected.
//!
//! ```text
//! cargo run --release --example admission_probe
//! ```

use cras_repro::core::{Admission, AdmissionModel, StreamParams};
use cras_repro::disk::calibrate::calibrate;
use cras_repro::disk::DiskDevice;
use cras_repro::media::StreamProfile;
use cras_repro::sys::{SysConfig, System};

fn main() {
    // Measure the disk like the paper's Appendix A benchmarks do.
    let mut dev: DiskDevice<u8> = DiskDevice::st32550n();
    let cal = calibrate(&mut dev, 64 * 1024);
    let p = cal.params;
    println!("calibrated disk parameters (Table 4):");
    println!("  D          = {:.2} MB/s", p.transfer_rate / 1e6);
    println!("  T_seek_max = {:.2} ms", p.t_seek_max.as_millis_f64());
    println!("  T_seek_min = {:.2} ms", p.t_seek_min.as_millis_f64());
    println!("  T_rot      = {:.2} ms", p.t_rot.as_millis_f64());
    println!("  T_cmd      = {:.2} ms", p.t_cmd.as_millis_f64());
    println!();

    // Closed-form capacities (formulas 1/2 + Appendix C).
    let adm = Admission::new(p, AdmissionModel::Paper);
    let mpeg1 = StreamParams::new(187_500.0, 6_250.0);
    let mpeg2 = StreamParams::new(750_000.0, 25_000.0);
    println!("interval  delay  MPEG1  MPEG2  bandwidth(MPEG1)");
    for t in [0.25, 0.5, 1.0, 1.5, 3.0] {
        let n1 = adm.capacity(t, mpeg1, u64::MAX / 4, 200);
        let n2 = adm.capacity(t, mpeg2, u64::MAX / 4, 200);
        println!(
            "  {:4.2}s   {:4.1}s  {:5}  {:5}  {:14.0}%",
            t,
            2.0 * t,
            n1,
            n2,
            100.0 * n1 as f64 * mpeg1.rate / p.transfer_rate
        );
    }
    println!();

    // Live rejection: open streams until the server says no.
    let mut sys = System::new(SysConfig::default());
    let mut admitted = 0;
    loop {
        let movie = sys.record_movie(&format!("probe{admitted}.mov"), StreamProfile::mpeg1(), 5.0);
        match sys.add_cras_player(&movie, 1) {
            Ok(_) => admitted += 1,
            Err(e) => {
                println!("stream {} rejected: {e}", admitted + 1);
                break;
            }
        }
    }
    println!("admitted {admitted} MPEG-1 streams at the default 0.5 s interval");
    println!(
        "server would wire {} KB of memory for them",
        sys.cras.memory_bytes() / 1024
    );
}
