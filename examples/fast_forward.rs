//! Fast forward (paper §2.1): "If an application wants to play back the
//! video stream at 60 fps (Fast Forward), CRAS needs to retrieve all the
//! video frames at twice the normal speed since CRAS cannot skip video
//! frames during the retrieval." `crs_set_rate` re-runs the admission
//! test at the scaled rate and doubles the retrieval clock.
//!
//! ```text
//! cargo run --release --example fast_forward
//! ```

use cras_repro::media::StreamProfile;
use cras_repro::sim::Duration;
use cras_repro::sys::{PlayerMode, SysConfig, System};

fn main() {
    let mut sys = System::new(SysConfig::default());
    let movie = sys.record_movie("ff.mov", StreamProfile::mpeg1(), 40.0);
    let client = sys.add_cras_player(&movie, 1).expect("admission passes");
    let start = sys.start_playback(client);
    let PlayerMode::Cras { stream } = sys.players[&client.0].mode else {
        unreachable!()
    };

    // Normal playback for 5 seconds.
    sys.run_until(start + Duration::from_secs(5));
    let fetched_normal = sys.metrics.cras_read_bytes;
    println!(
        "normal speed: {:.2} MB fetched in 5 s ({:.0} B/s)",
        fetched_normal as f64 / 1e6,
        fetched_normal as f64 / 5.0
    );

    // Fast forward: the server retrieves at 2x; the admission test is
    // re-run with the doubled rate. The clean protocol is
    // stop -> set_rate -> start, so the clock re-arms with the initial
    // delay and the client re-anchors against the same epoch.
    let now = sys.now();
    sys.cras.stop(stream, now);
    sys.cras
        .set_rate(stream, now, 2.0)
        .expect("one stream at 2x still fits");
    let begin = sys.cras.start(stream, now);
    {
        let p = sys.players.get_mut(&client.0).expect("exists");
        let k = p.next_frame;
        let ts = p.table.get(k).expect("in range").timestamp;
        // Frame k plays at `begin`; the rest of the schedule is
        // compressed 2x relative to media time.
        p.playback_start = begin - ts.mul_f64(0.5);
        p.time_scale = 0.5;
    }
    sys.run_until(now + Duration::from_secs(5));
    let fetched_ff = sys.metrics.cras_read_bytes - fetched_normal;
    println!(
        "fast forward: {:.2} MB fetched in the next 5 s ({:.0} B/s)",
        fetched_ff as f64 / 1e6,
        fetched_ff as f64 / 5.0
    );
    let p = &sys.players[&client.0];
    println!(
        "frames shown: {}  dropped: {}",
        p.stats.frames_shown, p.stats.frames_dropped
    );
    println!(
        "retrieval rate {:.2}x over the window (1 s of it was the re-arm pause; steady state is 2x)",
        fetched_ff as f64 / fetched_normal as f64
    );

    // An absurd request is refused by the admission test.
    let at = sys.now();
    let err = sys.cras.set_rate(stream, at, 64.0);
    println!("crs_set_rate(64x) -> {}", err.expect_err("must be refused"));
}
