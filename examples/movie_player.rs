//! The Figure 11 scenario (minus the network): a QtPlay-style player
//! retrieving a movie through CRAS while `cat` programs hammer the same
//! disk — then the same player on the Unix file system, for contrast.
//!
//! ```text
//! cargo run --release --example movie_player
//! ```

use cras_repro::media::StreamProfile;
use cras_repro::sim::table::sparkline;
use cras_repro::sim::Duration;
use cras_repro::sys::{SysConfig, System};

fn play(use_cras: bool) -> (f64, f64, String, u64) {
    let mut sys = System::new(SysConfig::default());
    let movie = sys.record_movie("feature.mov", StreamProfile::mpeg1(), 30.0);
    let noise_a = sys.record_movie("big-file-a", StreamProfile::mpeg2(), 20.0);
    let noise_b = sys.record_movie("big-file-b", StreamProfile::mpeg2(), 20.0);

    let client = if use_cras {
        sys.add_cras_player(&movie, 1).expect("admission passes")
    } else {
        sys.add_ufs_player(&movie, 1)
    };
    // Two `cat`s reading big files through the Unix server, like the
    // paper's load benchmark.
    sys.add_bg_reader(&noise_a);
    sys.add_bg_reader(&noise_b);
    sys.start_bg();
    sys.start_playback(client);
    sys.run_for(Duration::from_secs(35));

    let p = &sys.players[&client.0];
    let (mean, max) = p.delay_summary();
    let spark: Vec<f64> = p.stats.delays.points().iter().map(|&(_, d)| d).collect();
    let step = (spark.len() / 60).max(1);
    let sampled: Vec<f64> = spark.iter().copied().step_by(step).collect();
    (mean, max, sparkline(&sampled), p.stats.frames_dropped)
}

fn main() {
    println!("playing a 30 s movie while two `cat`s read the same disk...\n");
    let (cras_mean, cras_max, cras_spark, cras_drops) = play(true);
    let (ufs_mean, ufs_max, ufs_spark, ufs_drops) = play(false);

    println!(
        "CRAS  delay: mean {:7.2} ms  max {:7.2} ms  drops {}",
        cras_mean * 1e3,
        cras_max * 1e3,
        cras_drops
    );
    println!("      {cras_spark}");
    println!(
        "UFS   delay: mean {:7.2} ms  max {:7.2} ms  drops {}",
        ufs_mean * 1e3,
        ufs_max * 1e3,
        ufs_drops
    );
    println!("      {ufs_spark}");
    println!();
    println!(
        "CRAS holds per-frame delay near the decode cost; UFS jitters by {}x.",
        (ufs_max / cras_max.max(1e-9)).round()
    );
}
