//! The Figure 11 distributed configuration: QtPlay on one machine
//! retrieving through CRAS and streaming frames over a 10 Mbps Ethernet
//! (the paper's network) to a viewer — the intro's "travel coordinator"
//! checking video clips remotely.
//!
//! ```text
//! cargo run --release --example distributed_player
//! ```

use cras_repro::media::StreamProfile;
use cras_repro::sim::{Duration, Instant};
use cras_repro::sys::{Link, PlayerMode, SysConfig, System};

fn main() {
    let mut sys = System::new(SysConfig::default());
    let movie = sys.record_movie("clip.mov", StreamProfile::mpeg1(), 20.0);
    let client = sys.add_cras_player(&movie, 1).expect("admission passes");
    let start = sys.start_playback(client);

    // Model the network hop: every frame the local player displays is
    // also shipped to the remote viewer over NPS/Ethernet.
    let mut link = Link::ethernet_10mbps();

    // Run playback to completion first (the network does not back-press
    // the retrieval path — NPS transmits from the shared buffer).
    sys.run_for(Duration::from_secs(25));

    let p = &sys.players[&client.0];
    let PlayerMode::Cras { .. } = p.mode else {
        unreachable!()
    };
    // Replay the display timeline through the link.
    let mut remote_delays: Vec<f64> = Vec::new();
    let mut t_free = Instant::ZERO;
    for (i, &(shown_at, _local_delay)) in p.stats.delays.points().iter().enumerate() {
        let chunk = p.table.get(i as u32).expect("frame exists");
        let arrival = link.transmit(shown_at.max(t_free), chunk.size as u64);
        t_free = arrival;
        let due = start + chunk.timestamp;
        remote_delays.push(arrival.saturating_since(due).as_secs_f64());
    }
    let mean = remote_delays.iter().sum::<f64>() / remote_delays.len() as f64;
    let max = remote_delays.iter().copied().fold(0.0, f64::max);

    println!("frames streamed:        {}", link.packets());
    println!(
        "bytes over Ethernet:    {:.2} MB",
        link.bytes_sent() as f64 / 1e6
    );
    println!(
        "network throughput:     {:.2} Mbps of 10",
        link.throughput() * 8.0 / 1e6
    );
    println!(
        "remote frame delay:     mean {:.2} ms, max {:.2} ms",
        mean * 1e3,
        max * 1e3
    );
    println!("link queueing total:    {}", link.total_queueing());
    assert!(max < 0.020, "remote viewing stays comfortably timely");
    println!("ok: one MPEG-1 stream fits the paper's 10 Mbps Ethernet with ~6 ms per-frame cost");
}
