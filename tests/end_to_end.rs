//! Cross-crate integration tests: the whole pipeline from movie recording
//! through UFS layout, CRAS scheduling, the simulated disk and CPU, to a
//! playing client.
#![allow(clippy::field_reassign_with_default)]

use cras_repro::media::StreamProfile;
use cras_repro::sim::{Duration, Instant};
use cras_repro::sys::{PlayerMode, SchedMode, SysConfig, System};

#[test]
fn full_playback_pipeline_delivers_every_frame() {
    let mut sys = System::new(SysConfig::default());
    let movie = sys.record_movie("e2e.mov", StreamProfile::mpeg1(), 8.0);
    let client = sys.add_cras_player(&movie, 1).unwrap();
    let start = sys.start_playback(client);
    assert_eq!(
        start,
        Instant::ZERO + Duration::from_secs(1),
        "1 s initial delay"
    );
    sys.run_for(Duration::from_secs(12));
    let p = &sys.players[&client.0];
    assert!(p.done);
    assert_eq!(p.stats.frames_shown, 240);
    assert_eq!(p.stats.frames_dropped, 0);
    assert_eq!(sys.metrics.overruns, 0);
}

#[test]
fn concurrent_cras_and_ufs_players_coexist() {
    let mut sys = System::new(SysConfig::default());
    let a = sys.record_movie("a.mov", StreamProfile::mpeg1(), 6.0);
    let b = sys.record_movie("b.mov", StreamProfile::mpeg1(), 6.0);
    let ca = sys.add_cras_player(&a, 1).unwrap();
    let cb = sys.add_ufs_player(&b, 1);
    sys.start_playback(ca);
    sys.start_playback(cb);
    sys.run_for(Duration::from_secs(10));
    assert!(sys.players[&ca.0].done);
    assert!(sys.players[&cb.0].done);
    // The RT queue protected the CRAS stream.
    assert_eq!(sys.players[&ca.0].stats.frames_dropped, 0);
}

#[test]
fn cras_reads_respect_256k_limit_and_rt_class() {
    let mut sys = System::new(SysConfig::default());
    // 6 Mbps stream: each interval needs ~375 KB => at least two reads.
    let movie = sys.record_movie("big.mov", StreamProfile::mpeg2(), 6.0);
    let client = sys.add_cras_player(&movie, 1).unwrap();
    sys.start_playback(client);
    sys.run_for(Duration::from_secs(9));
    let stats = sys.cras.stats();
    assert!(stats.reads_issued >= 2 * stats.intervals.min(10) / 2);
    // Disk saw real-time traffic only (no UFS fetches in this scenario
    // beyond none — the movie is read via raw extents).
    let (rt_ops, normal_ops) = sys.disk().stats().ops;
    assert!(rt_ops > 0);
    assert_eq!(normal_ops, 0);
    let p = &sys.players[&client.0];
    assert_eq!(p.stats.frames_dropped, 0);
}

#[test]
fn seek_repositions_playback_mid_run() {
    let mut sys = System::new(SysConfig::default());
    let movie = sys.record_movie("seek.mov", StreamProfile::mpeg1(), 20.0);
    let client = sys.add_cras_player(&movie, 1).unwrap();
    let start = sys.start_playback(client);
    // Play 12 s, then jump back to media time 10 s (a replay seek).
    sys.run_until(start + Duration::from_secs(12));
    let PlayerMode::Cras { stream } = sys.players[&client.0].mode else {
        unreachable!()
    };
    let now = sys.now();
    let shown_before = sys.players[&client.0].stats.frames_shown;
    // The crs_* seek protocol: stop the clock, reposition, start again
    // (start re-arms the initial delay so the pipeline can refill).
    sys.cras.stop(stream, now);
    sys.cras.seek(stream, now, Duration::from_secs(10));
    let begin = sys.cras.start(stream, now);
    {
        let p = sys.players.get_mut(&client.0).unwrap();
        // Re-anchor the client schedule: frame 300 (media 10 s) plays at
        // the new clock start.
        p.next_frame = 300;
        p.playback_start = begin - Duration::from_secs(10);
    }
    sys.run_for(Duration::from_secs(5));
    let p = &sys.players[&client.0];
    // Frames from the new position played (some may drop right at the
    // seek boundary while the pipeline refills).
    assert!(
        p.stats.frames_shown > shown_before + 80,
        "shown {} (before seek {shown_before})",
        p.stats.frames_shown
    );
    assert!(p.next_frame > 350);
}

#[test]
fn round_robin_degrades_and_fixed_priority_protects() {
    let run = |sched: SchedMode| {
        let mut cfg = SysConfig::default();
        cfg.sched = sched;
        cfg.hogs = 3;
        let mut sys = System::new(cfg);
        let movie = sys.record_movie("m.mov", StreamProfile::mpeg1(), 6.0);
        let c = sys.add_cras_player(&movie, 1).unwrap();
        sys.start_hogs();
        sys.start_playback(c);
        sys.run_for(Duration::from_secs(10));
        sys.players[&c.0].delay_summary().1
    };
    let fp = run(SchedMode::FixedPriority);
    let rr = run(SchedMode::RoundRobin {
        quantum: Duration::from_millis(100),
    });
    assert!(fp < 0.01, "fixed-priority max delay {fp}");
    assert!(rr > 0.1, "round-robin max delay {rr}");
}

#[test]
fn server_memory_footprint_matches_paper_formula() {
    let mut sys = System::new(SysConfig::default());
    assert_eq!(sys.cras.memory_bytes(), 250 * 1024);
    let movie = sys.record_movie("m.mov", StreamProfile::mpeg1(), 5.0);
    let _ = sys.add_cras_player(&movie, 1).unwrap();
    let mem = sys.cras.memory_bytes();
    // 250 KB + B_i (≈ 200 KB for one MPEG-1 stream at T = 0.5 s).
    assert!(
        (250 * 1024 + 195_000..250 * 1024 + 205_000).contains(&mem),
        "memory {mem}"
    );
}

#[test]
fn background_load_does_not_steal_from_rt_queue() {
    let mut sys = System::new(SysConfig::default());
    let movie = sys.record_movie("m.mov", StreamProfile::mpeg1(), 10.0);
    let noise = sys.record_movie("noise.mov", StreamProfile::mpeg2(), 15.0);
    let c = sys.add_cras_player(&movie, 1).unwrap();
    sys.add_bg_reader(&noise);
    sys.add_bg_reader(&noise);
    sys.start_bg();
    sys.start_playback(c);
    sys.run_for(Duration::from_secs(14));
    let p = &sys.players[&c.0];
    assert!(p.done);
    assert_eq!(
        p.stats.frames_dropped, 0,
        "RT queue must protect the stream"
    );
    // And the cats did make progress on the leftovers.
    let bg_bytes: u64 = sys.bgs.values().map(|b| b.bytes_read).sum();
    assert!(bg_bytes > 1 << 20, "bg bytes {bg_bytes}");
}
