//! Deterministic replay for the cluster subsystem: running the same
//! cluster experiment twice must produce byte-identical
//! `Metrics::canonical_json` on every shard, and the parallel stepping
//! mode (one thread per live shard between barriers) must be
//! indistinguishable from lockstep on the same seed. The gateway only
//! acts at barriers and shards share no state between them, so any
//! divergence here means a real ordering bug leaked in.

use cras_repro::cluster::{Cluster, ClusterConfig, Stepping};
use cras_repro::media::StreamProfile;
use cras_repro::sim::Duration;
use cras_repro::sys::SysConfig;
use cras_repro::workload::cluster_scaling::{run_one, ClusterParams};

/// A small but non-trivial parameter set: enough titles and viewers to
/// exercise replication, cache chaining, and the whole-shard kill.
fn small() -> ClusterParams {
    let mut p = ClusterParams::standard();
    p.shards = 3;
    p.volumes = 2;
    p.titles = 60;
    p.stagger = Duration::from_millis(400);
    p.measure = Duration::from_secs(12);
    p
}

#[test]
fn cluster_experiment_replays_byte_identical() {
    let p = small();
    let (out_a, json_a) = run_one(&p, 48);
    let (out_b, json_b) = run_one(&p, 48);
    assert_eq!(out_a, out_b, "outcome differs between identical runs");
    assert_eq!(json_a.len(), json_b.len());
    for (shard, (a, b)) in json_a.iter().zip(&json_b).enumerate() {
        assert_eq!(a, b, "shard {shard} canonical_json differs across runs");
    }
}

#[test]
fn parallel_stepping_replays_lockstep_byte_identical() {
    let lock = small();
    let mut par = small();
    par.stepping = Stepping::Parallel;
    let (out_l, json_l) = run_one(&lock, 48);
    let (out_p, json_p) = run_one(&par, 48);
    assert_eq!(out_l, out_p, "parallel outcome differs from lockstep");
    for (shard, (l, p)) in json_l.iter().zip(&json_p).enumerate() {
        assert_eq!(
            l, p,
            "shard {shard} canonical_json differs between stepping modes"
        );
    }
}

/// Same property at the gateway level, without the workload harness in
/// the loop: identical open/close/kill sequences on a raw `Cluster`
/// replay byte-for-byte in both stepping modes.
#[test]
fn raw_gateway_replays_byte_identical() {
    let run = |stepping: Stepping| {
        let mut base = SysConfig::default();
        base.server.volumes = 2;
        base.seed = 0xD0_0D;
        let mut cfg = ClusterConfig::new(3, base);
        cfg.stepping = stepping;
        let mut cl = Cluster::new(cfg);
        for rank in 0..12usize {
            cl.add_title(
                &format!("t{rank:02}.mov"),
                &StreamProfile::mpeg1(),
                20.0,
                rank,
            );
        }
        let mut sessions = Vec::new();
        for rank in [0usize, 1, 0, 2, 5, 1, 0, 3] {
            if let Ok(sid) = cl.open(&format!("t{rank:02}.mov")) {
                sessions.push(sid);
            }
            cl.run_for(Duration::from_millis(500));
        }
        // Kill the shard serving the most sessions (first on ties).
        let mut counts = [0usize; 3];
        for (_, s) in cl.sessions() {
            counts[s.shard as usize] += 1;
        }
        let victim = (0..3u32)
            .max_by_key(|&s| (counts[s as usize], 3 - s))
            .unwrap();
        cl.kill_shard(victim);
        cl.run_for(Duration::from_secs(8));
        for sid in sessions {
            cl.close(sid);
        }
        cl.canonical_metrics()
    };
    assert_eq!(run(Stepping::Lockstep), run(Stepping::Lockstep));
    assert_eq!(run(Stepping::Lockstep), run(Stepping::Parallel));
}
