//! Interleaving fuzzing: a real kernel may deliver events due at the
//! same instant in any order. [`System::run_until_shuffled`] randomly
//! permutes every same-instant batch before canonicalizing dispatch, so
//! running the same workload under different shuffle seeds probes the
//! system's independence from delivery order. Observable behavior —
//! the canonical metrics serialization, the event count, every
//! player's frame statistics — must be byte-identical across seeds.
#![allow(clippy::field_reassign_with_default)]

use cras_repro::media::StreamProfile;
use cras_repro::sim::{Duration, Instant, Rng};
use cras_repro::sys::{SysConfig, System};

/// Three concurrent players started at the same instant plus a
/// background reader: interval ticks, frame deliveries and disk
/// completions pile onto shared instants, giving the shuffler real
/// batches to permute.
fn run_shuffled(shuffle_seed: u64) -> (String, u64, Vec<(u64, u64)>) {
    let mut cfg = SysConfig::default();
    cfg.seed = 0xF02;
    let mut sys = System::new(cfg);
    let a = sys.record_movie("a.mov", StreamProfile::mpeg1(), 4.0);
    let b = sys.record_movie("b.mov", StreamProfile::jpeg_vbr(187_500.0), 4.0);
    let noise = sys.record_movie("noise.mov", StreamProfile::mpeg1(), 8.0);
    let ca = sys.add_cras_player(&a, 1).expect("admission");
    let cb = sys.add_cras_player(&b, 1).expect("admission");
    let cc = sys.add_cras_player(&a, 2).expect("admission");
    sys.add_bg_reader(&noise);
    sys.start_bg();
    sys.start_playback(ca);
    sys.start_playback(cb);
    sys.start_playback(cc);
    let mut rng = Rng::new(shuffle_seed);
    sys.run_until_shuffled(Instant::ZERO + Duration::from_secs(8), &mut rng);
    let players: Vec<(u64, u64)> = [ca, cb, cc]
        .iter()
        .map(|c| {
            let p = &sys.players[&c.0];
            assert!(p.done, "player {} never finished", c.0);
            (p.stats.frames_shown, p.stats.frames_dropped)
        })
        .collect();
    (
        sys.metrics.canonical_json(),
        sys.engine.dispatched(),
        players,
    )
}

/// Five same-title viewers started at the same instant coalesce onto
/// one leader through the DESIGN §16 batched-join window. Which stream
/// leads and which follow — and every downstream effect of that choice
/// — must not depend on the delivery order of the same-instant events,
/// only on stream identity.
fn run_joined_shuffled(shuffle_seed: u64) -> (String, u64, u64, Vec<(u64, u64)>) {
    let mut cfg = SysConfig::default();
    cfg.seed = 0xF03;
    cfg.server.cache_budget = 64 << 20;
    cfg.server.join_window = Duration::from_secs(1);
    let mut sys = System::new(cfg);
    let m = sys.record_movie("hit.mov", StreamProfile::mpeg1(), 4.0);
    let clients: Vec<_> = (0..5)
        .map(|_| sys.add_cras_player(&m, 1).expect("admission"))
        .collect();
    for &c in &clients {
        sys.start_playback(c);
    }
    let mut rng = Rng::new(shuffle_seed);
    sys.run_until_shuffled(Instant::ZERO + Duration::from_secs(8), &mut rng);
    let players: Vec<(u64, u64)> = clients
        .iter()
        .map(|c| {
            let p = &sys.players[&c.0];
            assert!(p.done, "player {} never finished", c.0);
            (p.stats.frames_shown, p.stats.frames_dropped)
        })
        .collect();
    (
        sys.metrics.canonical_json(),
        sys.engine.dispatched(),
        sys.cras.cache().stats().joined_streams,
        players,
    )
}

#[test]
fn join_window_coalescing_is_order_independent() {
    let reference = run_joined_shuffled(0);
    assert!(reference.2 > 0, "degenerate scenario: nothing joined");
    assert!(
        reference
            .3
            .iter()
            .all(|&(shown, dropped)| shown > 0 && dropped == 0),
        "degenerate scenario: {:?}",
        reference.3
    );
    for seed in 1..6u64 {
        let run = run_joined_shuffled(seed);
        assert_eq!(
            run.0, reference.0,
            "seed {seed}: metrics diverged under a different delivery order"
        );
        assert_eq!(run.1, reference.1, "seed {seed}: event counts diverged");
        assert_eq!(run.2, reference.2, "seed {seed}: join counts diverged");
        assert_eq!(run.3, reference.3, "seed {seed}: player stats diverged");
    }
}

#[test]
fn shuffled_delivery_order_is_unobservable() {
    let reference = run_shuffled(0);
    assert!(
        reference
            .2
            .iter()
            .all(|&(shown, dropped)| shown > 0 && dropped == 0),
        "degenerate scenario: {:?}",
        reference.2
    );
    for seed in 1..6u64 {
        let run = run_shuffled(seed);
        assert_eq!(
            run.0, reference.0,
            "seed {seed}: metrics diverged under a different delivery order"
        );
        assert_eq!(run.1, reference.1, "seed {seed}: event counts diverged");
        assert_eq!(run.2, reference.2, "seed {seed}: player stats diverged");
    }
}
