//! The paper's headline quantitative claims, checked end-to-end against
//! the reproduction. EXPERIMENTS.md records the full numbers; these tests
//! pin the shape so regressions are caught by `cargo test`.

use cras_repro::core::{Admission, AdmissionModel, StreamParams};
use cras_repro::disk::calibrate::{calibrate, DiskParams};
use cras_repro::disk::DiskDevice;
use cras_repro::media::StreamProfile;
use cras_repro::sim::Duration;
use cras_repro::workload::runner::{run_scenario, Scenario, Storage};

fn scenario(storage: Storage, streams: usize, load: bool) -> Scenario {
    Scenario {
        storage,
        streams,
        profile: StreamProfile::mpeg1(),
        bg_readers: if load { 2 } else { 0 },
        bg_pause: Duration::ZERO,
        hogs: 0,
        sched: cras_repro::sys::SchedMode::FixedPriority,
        measure: Duration::from_secs(15),
        seed: 0xC1A5,
        enforce_admission: false,
    }
}

/// §3.1 / Figure 6: "UFS provides up to nine streams without other disk
/// I/O traffic."
#[test]
fn ufs_supports_about_nine_streams_unloaded() {
    let at9 = run_scenario(scenario(Storage::Ufs, 9, false));
    let at13 = run_scenario(scenario(Storage::Ufs, 13, false));
    // At 9 streams UFS still delivers ~full demand.
    let demand9 = 9.0 * 187_500.0;
    assert!(
        at9.throughput > 0.93 * demand9,
        "9-stream throughput {} vs demand {demand9}",
        at9.throughput
    );
    // At 13 it has saturated well below demand.
    let demand13 = 13.0 * 187_500.0;
    assert!(
        at13.throughput < 0.85 * demand13,
        "13-stream throughput {}",
        at13.throughput
    );
}

/// Figure 6: "it cannot support even one stream when other disk I/O
/// traffic is present."
#[test]
fn ufs_cannot_support_one_stream_under_load() {
    let out = run_scenario(scenario(Storage::Ufs, 1, true));
    // "Supporting" a stream means delivering every frame on time. Under
    // full-speed cats the UFS player cannot sustain the rate, and its
    // lateness grows to hundreds of milliseconds.
    assert!(
        out.throughput < 0.95 * 187_500.0,
        "UFS under load delivered {}",
        out.throughput
    );
    let (_, max_delay) = out.delays[0];
    assert!(
        max_delay > 0.3,
        "UFS player should fall far behind: max delay {max_delay}"
    );
}

/// Figure 6: CRAS is unaffected by background file access.
#[test]
fn cras_throughput_immune_to_background_load() {
    let clean = run_scenario(scenario(Storage::Cras, 8, false));
    let loaded = run_scenario(scenario(Storage::Cras, 8, true));
    assert!(
        (loaded.throughput - clean.throughput).abs() / clean.throughput < 0.05,
        "clean {} vs loaded {}",
        clean.throughput,
        loaded.throughput
    );
    assert_eq!(loaded.frames.1, 0, "no dropped frames under load");
}

/// Figure 6: CRAS saturates around half the disk's raw bandwidth at the
/// 0.5 s interval (the paper reports 55%).
#[test]
fn cras_saturation_fraction() {
    let out = run_scenario(scenario(Storage::Cras, 25, false));
    let frac = out.throughput / 6.5e6;
    assert!((0.40..0.75).contains(&frac), "saturation fraction {frac}");
}

/// §3.1: "with 3 seconds initial delay, it can support more than 25 MPEG1
/// streams whose total throughput is 4.6 MB/s (70% of disk bandwidth)" —
/// checked against the *calibrated* admission test (formulas only; the
/// closed form is what the claim is about).
#[test]
fn three_second_delay_capacity_claim() {
    let mut dev: DiskDevice<u8> = DiskDevice::st32550n();
    let cal = calibrate(&mut dev, 64 * 1024);
    let adm = Admission::new(cal.params, AdmissionModel::Paper);
    let cap = adm.capacity(
        1.5,
        StreamParams::new(187_500.0, 6_250.0),
        u64::MAX / 4,
        100,
    );
    assert!((23..=28).contains(&cap), "capacity {cap}");
    let rate = cap as f64 * 187_500.0;
    assert!(rate > 4.2e6, "total rate {rate}");
}

/// Table 4: the calibration recovers the paper's disk parameters.
#[test]
fn calibration_matches_table_4() {
    let mut dev: DiskDevice<u8> = DiskDevice::st32550n();
    let cal = calibrate(&mut dev, 64 * 1024);
    let p: DiskParams = cal.params;
    assert!(
        (p.transfer_rate / 1e6 - 6.5).abs() < 1.0,
        "D = {}",
        p.transfer_rate
    );
    assert!((p.t_seek_max.as_millis_f64() - 17.0).abs() < 2.0);
    assert!((p.t_seek_min.as_millis_f64() - 4.0).abs() < 1.5);
    assert!((p.t_rot.as_millis_f64() - 8.33).abs() < 0.05);
    assert!((p.t_cmd.as_millis_f64() - 2.0).abs() < 1.5);
}

/// Figures 8/9: the admission estimate is pessimistic at low rates and
/// tightens for high-rate streams under load.
#[test]
fn admission_accuracy_trends() {
    let low = run_scenario(Scenario {
        profile: StreamProfile::mpeg1(),
        ..scenario(Storage::Cras, 1, false)
    });
    let mut high = scenario(Storage::Cras, 5, true);
    high.profile = StreamProfile::mpeg2();
    let high = run_scenario(high);
    let (low_avg, _) = low.ratio_summary;
    let (high_avg, high_max) = high.ratio_summary;
    assert!(low_avg < 0.5, "1×MPEG1 ratio {low_avg}");
    assert!(high_avg > low_avg, "{high_avg} vs {low_avg}");
    assert!(high_max > 0.4, "5×MPEG2+load max ratio {high_max}");
}
