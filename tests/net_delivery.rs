//! Delivery-subsystem properties (DESIGN §18): multicast equivalence,
//! fault-injector transparency, delivery-order independence and crash
//! recovery of the network configuration.
//!
//! All scenarios run under [`System::run_until_shuffled`] so the
//! properties hold for *any* legal delivery order of same-instant
//! events, not just the canonical one.
#![allow(clippy::field_reassign_with_default)]

use cras_repro::media::StreamProfile;
use cras_repro::net::{LinkParams, NetFaults, SessionCfg};
use cras_repro::sim::{Duration, Instant, Rng};
use cras_repro::sys::{ClientId, SysConfig, System};

const VIEWERS: usize = 4;

/// Builds the shared scenario: a four-viewer batched-join audience on
/// one hot title plus one solo title, every session on one fast
/// uncontended LAN segment (so lateness can only come from the
/// delivery machinery itself, never from congestion).
fn scenario_cfg() -> SysConfig {
    let mut cfg = SysConfig::default();
    cfg.seed = 0x4E7D;
    cfg.server.cache_budget = 64 << 20;
    cfg.server.join_window = Duration::from_secs(1);
    cfg
}

fn build(multicast: bool, faults: Option<NetFaults>) -> (System, Vec<ClientId>) {
    let mut sys = System::new(scenario_cfg());
    let hot = sys.record_movie("hit.mov", StreamProfile::mpeg1(), 4.0);
    let solo = sys.record_movie("solo.mov", StreamProfile::mpeg1(), 4.0);
    let mut clients: Vec<ClientId> = (0..VIEWERS)
        .map(|_| sys.add_cras_player(&hot, 1).expect("admission"))
        .collect();
    clients.push(sys.add_cras_player(&solo, 1).expect("admission"));
    let link = sys.net_add_link(LinkParams::fast_lan());
    sys.net_set_multicast(multicast);
    sys.net_set_link_faults(link, faults);
    for &c in &clients {
        sys.net_attach(c, link, SessionCfg::default());
    }
    for &c in &clients {
        sys.start_playback(c);
    }
    (sys, clients)
}

/// Runs the scenario to quiescence under a shuffled delivery order and
/// returns per-session `(bytes_played, late_frames, playout_log)` plus
/// the shared link's byte counter and the delivery canonical JSON.
type SessionTrace = (u64, u64, Vec<(u32, u64, bool)>);

fn run(
    multicast: bool,
    faults: Option<NetFaults>,
    shuffle_seed: u64,
) -> (Vec<SessionTrace>, u64, String, String) {
    let (mut sys, clients) = build(multicast, faults);
    let mut rng = Rng::new(shuffle_seed);
    sys.run_until_shuffled(Instant::ZERO + Duration::from_secs(8), &mut rng);
    let traces = clients
        .iter()
        .map(|c| {
            let s = sys.net.session(c.0).expect("session exists");
            (
                s.stats.bytes_played,
                s.stats.late_frames,
                s.stats.playout_log.clone(),
            )
        })
        .collect();
    (
        traces,
        sys.net.link(0).stats.bytes_sent,
        sys.net.canonical_json(),
        sys.metrics.canonical_json(),
    )
}

#[test]
fn multicast_is_byte_and_timestamp_equivalent_to_unicast_when_uncontended() {
    let (uni, uni_bytes, _, _) = run(false, None, 0);
    let (multi, multi_bytes, _, _) = run(true, None, 0);
    assert_eq!(uni.len(), multi.len());
    for (i, (u, m)) in uni.iter().zip(&multi).enumerate() {
        assert!(u.2.len() > 60, "session {i}: degenerate playout log");
        assert_eq!(u.1, 0, "session {i}: unicast late frames");
        assert_eq!(m.1, 0, "session {i}: multicast late frames");
        assert_eq!(
            u.0, m.0,
            "session {i}: multicast changed the bytes delivered"
        );
        assert_eq!(
            u.2, m.2,
            "session {i}: multicast shifted a playout timestamp"
        );
    }
    // Same frames, same instants — but the group rode one transmission.
    assert!(
        multi_bytes < uni_bytes,
        "multicast did not reduce wire bytes: {multi_bytes} vs {uni_bytes}"
    );
}

#[test]
fn zero_probability_fault_injection_is_bit_for_bit_invisible() {
    let none = run(true, None, 3);
    let zero = run(
        true,
        Some(NetFaults {
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
            seed: 0xFA_17,
        }),
        3,
    );
    assert_eq!(none.0, zero.0, "session traces diverged");
    assert_eq!(none.1, zero.1, "wire bytes diverged");
    assert_eq!(none.2, zero.2, "delivery canonical JSON diverged");
    assert_eq!(none.3, zero.3, "system metrics diverged");
}

#[test]
fn delivery_is_independent_of_same_instant_event_order() {
    let reference = run(true, Some(NetFaults::loss(0.02, 7)), 0);
    let played: u64 = reference.0.iter().map(|t| t.2.len() as u64).sum();
    assert!(played > 0, "degenerate scenario: nothing played out");
    for seed in 1..5u64 {
        let other = run(true, Some(NetFaults::loss(0.02, 7)), seed);
        assert_eq!(
            other.0, reference.0,
            "seed {seed}: session traces diverged under a different order"
        );
        assert_eq!(
            other.2, reference.2,
            "seed {seed}: delivery canonical JSON diverged"
        );
        assert_eq!(other.3, reference.3, "seed {seed}: metrics diverged");
    }
}

#[test]
fn recovery_restores_links_sessions_and_multicast() {
    let (mut victim, clients) = build(true, None);
    victim.run_until(Instant::ZERO + Duration::from_secs(2));
    let crash_at = victim.now();
    let journal = victim.journal().clone();
    drop(victim);

    let (mut rec, remap) = System::recover(scenario_cfg(), &journal, crash_at);
    assert_eq!(rec.net.link_count(), 1, "link not recovered");
    assert!(rec.net.is_multicast(), "multicast flag not recovered");
    for c in &clients {
        let new = remap[&c.0];
        assert!(
            rec.net.has_session(new),
            "client {} lost its delivery session",
            c.0
        );
    }
    rec.run_for(Duration::from_secs(10));
    for c in &clients {
        let p = &rec.players[&remap[&c.0]];
        assert!(p.done, "recovered player {} never finished", c.0);
        let s = rec.net.session(remap[&c.0]).expect("session exists");
        assert!(
            s.stats.frames_played > 0,
            "recovered session {} never played a frame",
            c.0
        );
    }
}
