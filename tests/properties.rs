//! Property-based tests (proptest) on the core data structures and the
//! invariants the paper's design relies on.

use proptest::prelude::*;

use cras_repro::core::{Admission, AdmissionModel, StreamParams, TimeDrivenBuffer};
use cras_repro::disk::calibrate::DiskParams;
use cras_repro::disk::cscan::CScanQueue;
use cras_repro::disk::{DiskDevice, DiskRequest, SeekModel};
use cras_repro::sim::{Duration, Instant, Rng};
use cras_repro::ufs::{MkfsParams, Ufs};

proptest! {
    /// C-SCAN never "passes over" a pending request: from any head
    /// position, repeatedly popping visits each cylinder group in at most
    /// two monotone sweeps.
    #[test]
    fn cscan_two_sweeps(cyls in proptest::collection::vec(0u32..3000, 1..40), head in 0u32..3000) {
        let mut q = CScanQueue::new();
        for &c in &cyls {
            q.push(c, Instant::ZERO, c);
        }
        let mut order = Vec::new();
        let mut h = head;
        while let Some(p) = q.pop_next(h) {
            h = p.cyl;
            order.push(p.cyl);
        }
        prop_assert_eq!(order.len(), cyls.len());
        // Count direction reversals: at most one wrap.
        let wraps = order.windows(2).filter(|w| w[1] < w[0]).count();
        prop_assert!(wraps <= 1, "order {:?}", order);
        // Everything before the wrap is >= head.
        if wraps == 1 {
            let wrap_pos = order.windows(2).position(|w| w[1] < w[0]).unwrap();
            for &c in &order[..=wrap_pos] {
                prop_assert!(c >= head);
            }
        }
    }

    /// Seek models are monotone in distance.
    #[test]
    fn seek_models_monotone(d1 in 0u32..3510, d2 in 0u32..3510) {
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        for m in [SeekModel::st32550n_linear(3510), SeekModel::st32550n_measured()] {
            prop_assert!(m.time_secs(lo) <= m.time_secs(hi) + 1e-12);
        }
    }

    /// The admission test is monotone: adding a stream never reduces the
    /// calculated I/O time or the buffer bound.
    #[test]
    fn admission_monotone(n in 1usize..30, rate in 50_000.0..800_000.0f64, chunk in 1_000.0..50_000.0f64) {
        let adm = Admission::new(DiskParams::paper_table4(), AdmissionModel::Paper);
        let s = StreamParams::new(rate, chunk);
        let small = vec![s; n];
        let big = vec![s; n + 1];
        prop_assert!(adm.calculated_io_time(0.5, &big) > adm.calculated_io_time(0.5, &small));
        prop_assert!(adm.buffer_total(0.5, &big) > adm.buffer_total(0.5, &small));
    }

    /// If a stream set is admitted at interval T, it is admitted at any
    /// longer interval (given ample memory) — the paper's
    /// longer-delay-more-streams tradeoff.
    #[test]
    fn admission_interval_monotone(n in 1usize..25, t in 0.3..2.0f64) {
        let adm = Admission::new(DiskParams::paper_table4(), AdmissionModel::Paper);
        let streams = vec![StreamParams::new(187_500.0, 6_250.0); n];
        let budget = u64::MAX / 4;
        if adm.admit(t, &streams, budget).is_ok() {
            prop_assert!(adm.admit(t * 1.5, &streams, budget).is_ok());
        }
    }

    /// Time-driven buffer: `get` returns exactly the chunk whose interval
    /// contains the query, for any frame layout.
    #[test]
    fn tdbuffer_get_matches_linear_scan(
        durs in proptest::collection::vec(1u64..200, 1..40),
        query_ms in 0u64..8000,
    ) {
        let mut buf = TimeDrivenBuffer::new(1 << 20, Duration::ZERO);
        let mut ts = Duration::ZERO;
        let mut chunks = Vec::new();
        for (i, &d) in durs.iter().enumerate() {
            let c = cras_repro::core::BufferedChunk {
                index: i as u32,
                timestamp: ts,
                duration: Duration::from_millis(d),
                size: 100,
                posted_at: Instant::ZERO,
            };
            buf.put(c, Duration::ZERO);
            chunks.push(c);
            ts += Duration::from_millis(d);
        }
        let q = Duration::from_millis(query_ms);
        let expected = chunks
            .iter()
            .find(|c| c.timestamp <= q && q < c.timestamp + c.duration)
            .map(|c| c.index);
        prop_assert_eq!(buf.get(q).map(|c| c.index), expected);
    }

    /// Time-driven buffer: occupancy equals the sum of surviving chunk
    /// sizes after any discard point.
    #[test]
    fn tdbuffer_occupancy_invariant(n in 1u32..50, discard_ms in 0u64..3000) {
        let mut buf = TimeDrivenBuffer::new(1 << 20, Duration::ZERO);
        for i in 0..n {
            buf.put(
                cras_repro::core::BufferedChunk {
                    index: i,
                    timestamp: Duration::from_millis(i as u64 * 100),
                    duration: Duration::from_millis(100),
                    size: 500,
                    posted_at: Instant::ZERO,
                },
                Duration::ZERO,
            );
        }
        buf.discard_obsolete(Duration::from_millis(discard_ms));
        let surviving = (0..n)
            .filter(|&i| i as u64 * 100 >= discard_ms)
            .count() as u64;
        prop_assert_eq!(buf.bytes(), surviving * 500);
        prop_assert_eq!(buf.len() as u64, surviving);
    }

    /// UFS extent maps exactly cover every file, in order, without
    /// overlap, under arbitrary interleaved append patterns.
    #[test]
    fn extent_map_covers_file(appends in proptest::collection::vec((0usize..3, 1u64..200_000), 1..30)) {
        let geom = cras_repro::disk::DiskGeometry::st32550n();
        let mut fs = Ufs::format(&geom, MkfsParams::tuned(&geom), 99);
        let inos = [
            fs.create("f0").unwrap(),
            fs.create("f1").unwrap(),
            fs.create("f2").unwrap(),
        ];
        for &(which, bytes) in &appends {
            fs.append(inos[which], bytes).unwrap();
        }
        for &ino in &inos {
            let size = fs.file_size(ino);
            let extents = fs.extent_map(ino);
            let mapped: u64 = extents.iter().map(|e| e.bytes()).sum();
            // Extent maps are block-granular.
            prop_assert_eq!(mapped, size.div_ceil(8192) * 8192);
            let mut off = 0;
            for e in &extents {
                prop_assert_eq!(e.file_offset, off);
                off += e.bytes();
            }
            // No two extents overlap on disk.
            let mut ranges: Vec<(u64, u64)> = extents
                .iter()
                .map(|e| (e.disk_block, e.disk_block + e.nblocks as u64))
                .collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlapping extents");
            }
        }
    }

    /// The disk device conserves requests: everything submitted is
    /// eventually completed exactly once, regardless of class mix.
    #[test]
    fn disk_conserves_requests(reqs in proptest::collection::vec((0u64..4_000_000, 1u32..64, any::<bool>()), 1..60)) {
        let mut dev: DiskDevice<usize> = DiskDevice::st32550n();
        let mut completions = vec![0u32; reqs.len()];
        let mut now = Instant::ZERO;
        let mut pending_event: Option<Instant> = None;
        for (i, &(block, len, rt)) in reqs.iter().enumerate() {
            let req = if rt {
                DiskRequest::rt_read(block, len, i)
            } else {
                DiskRequest::read(block, len, i)
            };
            if let Some(t) = dev.submit(now, req) {
                pending_event = Some(t);
            }
        }
        while let Some(t) = pending_event {
            now = t;
            let (done, next) = dev.complete(now);
            completions[done.req.tag] += 1;
            pending_event = next;
        }
        prop_assert!(completions.iter().all(|&c| c == 1), "{completions:?}");
        prop_assert_eq!(dev.stats().total_ops() as usize, reqs.len());
    }

    /// Any sequence of create/append/remove operations leaves the file
    /// system fsck-clean: no leaks, no double references, no references
    /// to free blocks.
    #[test]
    fn fs_stays_consistent_under_random_ops(
        ops in proptest::collection::vec((0u8..3, 0usize..4, 1u64..3_000_000), 1..40),
    ) {
        let geom = cras_repro::disk::DiskGeometry::st32550n();
        let mut fs = Ufs::format(&geom, MkfsParams::stock(&geom), 41);
        let names = ["a", "b", "c", "d"];
        for &(op, which, bytes) in &ops {
            let name = names[which];
            match op {
                0 => {
                    let _ = fs.create(name);
                }
                1 => {
                    if let Ok(ino) = fs.lookup(name) {
                        let _ = fs.append(ino, bytes);
                    }
                }
                _ => {
                    let _ = fs.remove(name);
                }
            }
        }
        let rep = cras_repro::ufs::check(&fs, true);
        prop_assert!(rep.is_clean(), "{:?}", rep.errors);
    }

    /// Fragmenting and rearranging movies never corrupts the file system.
    #[test]
    fn fragment_cycle_stays_consistent(severity in 0.05f64..1.0, secs in 2.0f64..20.0) {
        let geom = cras_repro::disk::DiskGeometry::st32550n();
        let mut fs = Ufs::format(&geom, MkfsParams::tuned(&geom), 43);
        let mut rng = Rng::new(44);
        let movie = cras_repro::media::record_movie(
            &mut fs,
            "m",
            cras_repro::media::StreamProfile::mpeg1(),
            secs,
            &mut rng,
        )
        .unwrap();
        let fragged = cras_repro::media::fragment_movie(&mut fs, &movie, severity, &mut rng).unwrap();
        let rep = cras_repro::ufs::check(&fs, true);
        prop_assert!(rep.is_clean(), "after fragment: {:?}", rep.errors);
        let _fixed = cras_repro::media::rearrange_movie(&mut fs, &fragged).unwrap();
        let rep = cras_repro::ufs::check(&fs, true);
        prop_assert!(rep.is_clean(), "after rearrange: {:?}", rep.errors);
    }

    /// Deterministic RNG forks never correlate with their parent stream.
    #[test]
    fn rng_forks_are_decorrelated(seed in any::<u64>()) {
        let mut parent = Rng::new(seed);
        let mut child = parent.fork();
        let matches = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        prop_assert!(matches < 3);
    }
}
