//! Property-style tests on the core data structures and the invariants
//! the paper's design relies on. Each test draws many random cases from a
//! seeded [`Rng`], so the suite is deterministic and needs no third-party
//! property-testing framework.

use cras_repro::core::{
    on_volume, Admission, AdmissionModel, CrasServer, PlacementPolicy, ServerConfig, StreamParams,
    TimeDrivenBuffer,
};
use cras_repro::disk::calibrate::DiskParams;
use cras_repro::disk::cscan::CScanQueue;
use cras_repro::disk::{DiskDevice, DiskRequest, SeekModel, VolumeId};
use cras_repro::media::{generate_chunks, StreamProfile};
use cras_repro::sim::{Duration, Instant, Rng};
use cras_repro::sys::{MoviePlacement, SysConfig, System};
use cras_repro::ufs::{Extent, MkfsParams, Ufs};

/// C-SCAN never "passes over" a pending request: from any head
/// position, repeatedly popping visits each cylinder group in at most
/// two monotone sweeps.
#[test]
fn cscan_two_sweeps() {
    let mut rng = Rng::new(0xC5CA);
    for case in 0..200 {
        let n = rng.range_inclusive(1, 39) as usize;
        let cyls: Vec<u32> = (0..n).map(|_| rng.below(3000) as u32).collect();
        let head = rng.below(3000) as u32;
        let mut q = CScanQueue::new();
        for &c in &cyls {
            q.push(c, Instant::ZERO, c);
        }
        let mut order = Vec::new();
        let mut h = head;
        while let Some(p) = q.pop_next(h) {
            h = p.cyl;
            order.push(p.cyl);
        }
        assert_eq!(order.len(), cyls.len(), "case {case}");
        // Count direction reversals: at most one wrap.
        let wraps = order.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(wraps <= 1, "case {case}: order {order:?}");
        // Everything before the wrap is >= head.
        if wraps == 1 {
            let wrap_pos = order.windows(2).position(|w| w[1] < w[0]).unwrap();
            for &c in &order[..=wrap_pos] {
                assert!(c >= head, "case {case}");
            }
        }
    }
}

/// Seek models are monotone in distance.
#[test]
fn seek_models_monotone() {
    let mut rng = Rng::new(0x5EEC);
    for _ in 0..500 {
        let d1 = rng.below(3510) as u32;
        let d2 = rng.below(3510) as u32;
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        for m in [
            SeekModel::st32550n_linear(3510),
            SeekModel::st32550n_measured(),
        ] {
            assert!(m.time_secs(lo) <= m.time_secs(hi) + 1e-12);
        }
    }
}

/// The admission test is monotone: adding a stream never reduces the
/// calculated I/O time or the buffer bound.
#[test]
fn admission_monotone() {
    let mut rng = Rng::new(0xAD31);
    let adm = Admission::new(DiskParams::paper_table4(), AdmissionModel::Paper);
    for _ in 0..300 {
        let n = rng.range_inclusive(1, 29) as usize;
        let rate = rng.f64_range(50_000.0, 800_000.0);
        let chunk = rng.f64_range(1_000.0, 50_000.0);
        let s = StreamParams::new(rate, chunk);
        let small = vec![s; n];
        let big = vec![s; n + 1];
        assert!(adm.calculated_io_time(0.5, &big) > adm.calculated_io_time(0.5, &small));
        assert!(adm.buffer_total(0.5, &big) > adm.buffer_total(0.5, &small));
    }
}

/// If a stream set is admitted at interval T, it is admitted at any
/// longer interval (given ample memory) — the paper's
/// longer-delay-more-streams tradeoff.
#[test]
fn admission_interval_monotone() {
    let mut rng = Rng::new(0xAD32);
    let adm = Admission::new(DiskParams::paper_table4(), AdmissionModel::Paper);
    for _ in 0..300 {
        let n = rng.range_inclusive(1, 24) as usize;
        let t = rng.f64_range(0.3, 2.0);
        let streams = vec![StreamParams::new(187_500.0, 6_250.0); n];
        let budget = u64::MAX / 4;
        if adm.admit(t, &streams, budget).is_ok() {
            assert!(adm.admit(t * 1.5, &streams, budget).is_ok());
        }
    }
}

/// Time-driven buffer: `get` returns exactly the chunk whose interval
/// contains the query, for any frame layout.
#[test]
fn tdbuffer_get_matches_linear_scan() {
    let mut rng = Rng::new(0x7DB1);
    for case in 0..200 {
        let n = rng.range_inclusive(1, 39) as usize;
        let durs: Vec<u64> = (0..n).map(|_| rng.range_inclusive(1, 199)).collect();
        let query_ms = rng.below(8000);
        let mut buf = TimeDrivenBuffer::new(1 << 20, Duration::ZERO);
        let mut ts = Duration::ZERO;
        let mut chunks = Vec::new();
        for (i, &d) in durs.iter().enumerate() {
            let c = cras_repro::core::BufferedChunk {
                index: i as u32,
                timestamp: ts,
                duration: Duration::from_millis(d),
                size: 100,
                posted_at: Instant::ZERO,
            };
            buf.put(c, Duration::ZERO);
            chunks.push(c);
            ts += Duration::from_millis(d);
        }
        let q = Duration::from_millis(query_ms);
        let expected = chunks
            .iter()
            .find(|c| c.timestamp <= q && q < c.timestamp + c.duration)
            .map(|c| c.index);
        assert_eq!(buf.get(q).map(|c| c.index), expected, "case {case}");
    }
}

/// Time-driven buffer: occupancy equals the sum of surviving chunk
/// sizes after any discard point.
#[test]
fn tdbuffer_occupancy_invariant() {
    let mut rng = Rng::new(0x7DB2);
    for case in 0..200 {
        let n = rng.range_inclusive(1, 49) as u32;
        let discard_ms = rng.below(3000);
        let mut buf = TimeDrivenBuffer::new(1 << 20, Duration::ZERO);
        for i in 0..n {
            buf.put(
                cras_repro::core::BufferedChunk {
                    index: i,
                    timestamp: Duration::from_millis(i as u64 * 100),
                    duration: Duration::from_millis(100),
                    size: 500,
                    posted_at: Instant::ZERO,
                },
                Duration::ZERO,
            );
        }
        buf.discard_obsolete(Duration::from_millis(discard_ms));
        let surviving = (0..n).filter(|&i| i as u64 * 100 >= discard_ms).count() as u64;
        assert_eq!(buf.bytes(), surviving * 500, "case {case}");
        assert_eq!(buf.len() as u64, surviving, "case {case}");
    }
}

/// UFS extent maps exactly cover every file, in order, without
/// overlap, under arbitrary interleaved append patterns.
#[test]
fn extent_map_covers_file() {
    let mut rng = Rng::new(0xE47E);
    for case in 0..30 {
        let n = rng.range_inclusive(1, 29) as usize;
        let appends: Vec<(usize, u64)> = (0..n)
            .map(|_| (rng.below(3) as usize, rng.range_inclusive(1, 199_999)))
            .collect();
        let geom = cras_repro::disk::DiskGeometry::st32550n();
        let mut fs = Ufs::format(&geom, MkfsParams::tuned(&geom), 99);
        let inos = [
            fs.create("f0").unwrap(),
            fs.create("f1").unwrap(),
            fs.create("f2").unwrap(),
        ];
        for &(which, bytes) in &appends {
            fs.append(inos[which], bytes).unwrap();
        }
        for &ino in &inos {
            let size = fs.file_size(ino);
            let extents = fs.extent_map(ino);
            let mapped: u64 = extents.iter().map(|e| e.bytes()).sum();
            // Extent maps are block-granular.
            assert_eq!(mapped, size.div_ceil(8192) * 8192, "case {case}");
            let mut off = 0;
            for e in &extents {
                assert_eq!(e.file_offset, off, "case {case}");
                off += e.bytes();
            }
            // No two extents overlap on disk.
            let mut ranges: Vec<(u64, u64)> = extents
                .iter()
                .map(|e| (e.disk_block, e.disk_block + e.nblocks as u64))
                .collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                assert!(w[0].1 <= w[1].0, "case {case}: overlapping extents");
            }
        }
    }
}

/// The disk device conserves requests: everything submitted is
/// eventually completed exactly once, regardless of class mix.
#[test]
fn disk_conserves_requests() {
    let mut rng = Rng::new(0xD15C);
    for case in 0..100 {
        let n = rng.range_inclusive(1, 59) as usize;
        let reqs: Vec<(u64, u32, bool)> = (0..n)
            .map(|_| {
                (
                    rng.below(4_000_000),
                    rng.range_inclusive(1, 63) as u32,
                    rng.chance(0.5),
                )
            })
            .collect();
        let mut dev: DiskDevice<usize> = DiskDevice::st32550n();
        let mut completions = vec![0u32; reqs.len()];
        let mut now = Instant::ZERO;
        let mut pending_event: Option<Instant> = None;
        for (i, &(block, len, rt)) in reqs.iter().enumerate() {
            let req = if rt {
                DiskRequest::rt_read(block, len, i)
            } else {
                DiskRequest::read(block, len, i)
            };
            if let Some(t) = dev.submit(now, req) {
                pending_event = Some(t);
            }
        }
        while let Some(t) = pending_event {
            now = t;
            let (done, next) = dev.complete(now);
            completions[done.req.tag] += 1;
            pending_event = next;
        }
        assert!(
            completions.iter().all(|&c| c == 1),
            "case {case}: {completions:?}"
        );
        assert_eq!(dev.stats().total_ops() as usize, reqs.len(), "case {case}");
    }
}

/// Any sequence of create/append/remove operations leaves the file
/// system fsck-clean: no leaks, no double references, no references
/// to free blocks.
#[test]
fn fs_stays_consistent_under_random_ops() {
    let mut rng = Rng::new(0xF5C);
    for case in 0..30 {
        let n = rng.range_inclusive(1, 39) as usize;
        let ops: Vec<(u8, usize, u64)> = (0..n)
            .map(|_| {
                (
                    rng.below(3) as u8,
                    rng.below(4) as usize,
                    rng.range_inclusive(1, 2_999_999),
                )
            })
            .collect();
        let geom = cras_repro::disk::DiskGeometry::st32550n();
        let mut fs = Ufs::format(&geom, MkfsParams::stock(&geom), 41);
        let names = ["a", "b", "c", "d"];
        for &(op, which, bytes) in &ops {
            let name = names[which];
            match op {
                0 => {
                    let _ = fs.create(name);
                }
                1 => {
                    if let Ok(ino) = fs.lookup(name) {
                        let _ = fs.append(ino, bytes);
                    }
                }
                _ => {
                    let _ = fs.remove(name);
                }
            }
        }
        let rep = cras_repro::ufs::check(&fs, true);
        assert!(rep.is_clean(), "case {case}: {:?}", rep.errors);
    }
}

/// Fragmenting and rearranging movies never corrupts the file system.
#[test]
fn fragment_cycle_stays_consistent() {
    let mut outer = Rng::new(0xF4A6);
    for case in 0..10 {
        let severity = outer.f64_range(0.05, 1.0);
        let secs = outer.f64_range(2.0, 20.0);
        let geom = cras_repro::disk::DiskGeometry::st32550n();
        let mut fs = Ufs::format(&geom, MkfsParams::tuned(&geom), 43);
        let mut rng = Rng::new(44);
        let movie = cras_repro::media::record_movie(
            &mut fs,
            "m",
            cras_repro::media::StreamProfile::mpeg1(),
            secs,
            &mut rng,
        )
        .unwrap();
        let fragged =
            cras_repro::media::fragment_movie(&mut fs, &movie, severity, &mut rng).unwrap();
        let rep = cras_repro::ufs::check(&fs, true);
        assert!(
            rep.is_clean(),
            "case {case} after fragment: {:?}",
            rep.errors
        );
        let _fixed = cras_repro::media::rearrange_movie(&mut fs, &fragged).unwrap();
        let rep = cras_repro::ufs::check(&fs, true);
        assert!(
            rep.is_clean(),
            "case {case} after rearrange: {:?}",
            rep.errors
        );
    }
}

/// Movie placement over the volume set is a pure function of the seed:
/// two systems built alike place every movie on the same volume and
/// inode, and round-robin deals movies cyclically.
#[test]
fn volume_placement_is_deterministic() {
    let mut outer = Rng::new(0xB011);
    for case in 0..5 {
        let volumes = outer.range_inclusive(1, 4) as usize;
        let seed = outer.next_u64();
        let movies = outer.range_inclusive(3, 9) as usize;
        let build = || {
            let mut cfg = SysConfig {
                seed,
                ..SysConfig::default()
            };
            cfg.server.volumes = volumes;
            let mut sys = System::new(cfg);
            for i in 0..movies {
                sys.record_movie(&format!("m{i}.mov"), StreamProfile::mpeg1(), 2.0);
            }
            sys
        };
        let (a, b) = (build(), build());
        for i in 0..movies {
            let name = format!("m{i}.mov");
            let whole = |sys: &System| match sys.placement(&name) {
                Some(MoviePlacement::Whole { vol, ino }) => (*vol, *ino),
                p => panic!("case {case}: expected whole placement, got {p:?}"),
            };
            assert_eq!(whole(&a), whole(&b), "case {case} movie {i}");
            assert_eq!(whole(&a).0 as usize, i % volumes, "case {case} movie {i}");
        }
    }
}

/// The per-volume admission test keeps every spindle — in particular
/// the bottleneck one — within its interval: after admitting streams
/// until rejection and playing them, no interval's calculated I/O time
/// exceeds `T` on any volume.
#[test]
fn per_volume_admission_bounds_bottleneck_interval() {
    let mut outer = Rng::new(0xAD33);
    for case in 0..3 {
        let volumes = outer.range_inclusive(1, 3) as usize;
        let mut cfg = SysConfig {
            seed: outer.next_u64(),
            ..SysConfig::default()
        };
        cfg.server.volumes = volumes;
        cfg.server.buffer_budget = 1 << 40;
        let t = cfg.server.interval;
        let mut sys = System::new(cfg);
        let mut players = Vec::new();
        for i in 0..(16 * volumes + 8) {
            let m = sys.record_movie(&format!("p{i}.mov"), StreamProfile::mpeg1(), 4.0);
            match sys.add_cras_player(&m, 1) {
                Ok(c) => players.push(c),
                Err(_) => break,
            }
        }
        assert!(
            players.len() >= 10 * volumes,
            "case {case}: {volumes} volumes admitted only {}",
            players.len()
        );
        let mut start = Instant::ZERO;
        for &c in &players {
            start = sys.start_playback(c).max(start);
        }
        sys.run_until(start + Duration::from_secs(2));
        let mut seen = vec![false; volumes];
        for io in sys.metrics.intervals() {
            assert!(
                io.calculated <= t.as_secs_f64() + 1e-9,
                "case {case}: volume {} calculated {} exceeds interval",
                io.volume,
                io.calculated
            );
            seen[io.volume as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "case {case}: some volume saw no real-time I/O: {seen:?}"
        );
    }
}

/// Closing a stream frees admission capacity on the volume it was
/// reading from — and on no other volume.
#[test]
fn closing_stream_frees_capacity_on_its_volume() {
    let mut rng = Rng::new(0xC105);
    for case in 0..5 {
        let secs = rng.f64_range(2.0, 8.0);
        let cfg = ServerConfig {
            volumes: 2,
            buffer_budget: u64::MAX / 4,
            ..ServerConfig::default()
        };
        let mut srv = CrasServer::new(DiskParams::paper_table4(), cfg);
        let table = generate_chunks(&StreamProfile::mpeg1(), secs, &mut rng);
        let extents = |vol: u32| {
            on_volume(
                VolumeId(vol),
                vec![Extent {
                    file_offset: 0,
                    disk_block: 0,
                    nblocks: table.total_bytes().div_ceil(512) as u32,
                }],
            )
        };
        // Fill volume 0 to rejection.
        let mut on0 = Vec::new();
        while let Ok(id) = srv.open_placed("v0", table.clone(), extents(0)) {
            on0.push(id);
        }
        assert!(on0.len() >= 2, "case {case}");
        // Volume 1 is untouched: a stream there still admits, and its
        // admission does not consume volume-0 capacity.
        let on1 = srv
            .open_placed("v1", table.clone(), extents(1))
            .expect("volume 1 has free capacity");
        assert!(srv.open_placed("x", table.clone(), extents(0)).is_err());
        // Closing the volume-1 stream frees nothing on volume 0 ...
        srv.close(on1);
        assert!(srv.open_placed("x", table.clone(), extents(0)).is_err());
        // ... but closing a volume-0 stream frees exactly one slot there.
        let victim = rng.below(on0.len() as u64) as usize;
        srv.close(on0.swap_remove(victim));
        srv.open_placed("x", table.clone(), extents(0))
            .expect("closing a volume-0 stream frees volume-0 capacity");
        assert!(srv.open_placed("y", table.clone(), extents(0)).is_err());
    }
}

/// Mirrored placement never co-locates a replica with its primary, and
/// once a volume has failed neither replica of a new movie lands there.
#[test]
fn mirrored_placement_never_colocates() {
    let mut outer = Rng::new(0x31AA);
    for case in 0..5 {
        let volumes = outer.range_inclusive(3, 5) as usize;
        let mut cfg = SysConfig {
            seed: outer.next_u64(),
            ..SysConfig::default()
        };
        cfg.server.volumes = volumes;
        cfg.server.placement = PlacementPolicy::Mirrored;
        let mut sys = System::new(cfg);
        let movies = outer.range_inclusive(2, 6) as usize;
        let check = |sys: &System, name: &str, dead: Option<u32>| match sys.placement(name) {
            Some(MoviePlacement::Mirrored {
                primary, mirror, ..
            }) => {
                assert_ne!(primary, mirror, "case {case}: {name} colocated");
                if let Some(d) = dead {
                    assert_ne!(*primary, d, "case {case}: {name} placed on dead volume");
                    assert_ne!(*mirror, d, "case {case}: {name} mirrored to dead volume");
                }
            }
            p => panic!("case {case}: expected mirrored placement, got {p:?}"),
        };
        for i in 0..movies {
            let name = format!("m{i}.mov");
            sys.record_movie(&name, StreamProfile::mpeg1(), 2.0);
            check(&sys, &name, None);
        }
        let dead = outer.below(volumes as u64) as u32;
        sys.fail_volume(dead);
        for i in 0..movies {
            let name = format!("r{i}.mov");
            sys.record_movie(&name, StreamProfile::mpeg1(), 2.0);
            check(&sys, &name, Some(dead));
        }
    }
}

/// Degraded-mode admission capacity is monotone: each additional volume
/// failure can only shrink the number of mirrored streams admitted, and
/// marking every volume healthy again restores the original count
/// exactly.
#[test]
fn degraded_capacity_monotone_and_restored() {
    let mut outer = Rng::new(0xDE64);
    for case in 0..5 {
        let volumes = outer.range_inclusive(3, 5) as usize;
        let secs = outer.f64_range(2.0, 6.0);
        let mut rng = Rng::new(outer.next_u64());
        let table = generate_chunks(&StreamProfile::mpeg1(), secs, &mut rng);
        let nb = table.total_bytes().div_ceil(512) as u32;
        let rep = |vol: u32, blk: u64| {
            on_volume(
                VolumeId(vol),
                vec![Extent {
                    file_offset: 0,
                    disk_block: blk,
                    nblocks: nb,
                }],
            )
        };
        let cfg = ServerConfig {
            volumes,
            buffer_budget: u64::MAX / 4,
            ..ServerConfig::default()
        };
        let count = |failed: &[u32]| -> usize {
            let mut srv = CrasServer::new(DiskParams::paper_table4(), cfg);
            for &v in failed {
                srv.set_volume_failed(VolumeId(v), true);
            }
            let live: Vec<u32> = (0..volumes as u32)
                .filter(|v| !failed.contains(v))
                .collect();
            let mut n = 0usize;
            loop {
                let p = live[n % live.len()];
                let m = live[(n + 1) % live.len()];
                let open = srv.open_replicated(
                    &format!("s{n}"),
                    table.clone(),
                    rep(p, 0),
                    Some(rep(m, 1_000_000)),
                );
                match open {
                    Ok(_) => n += 1,
                    Err(_) => break,
                }
            }
            n
        };
        let full = count(&[]);
        assert!(full >= 2, "case {case}: only {full} mirrored streams fit");
        let mut failed: Vec<u32> = Vec::new();
        let mut prev = full;
        while volumes - failed.len() > 2 {
            let victim = loop {
                let v = outer.below(volumes as u64) as u32;
                if !failed.contains(&v) {
                    break v;
                }
            };
            failed.push(victim);
            let c = count(&failed);
            assert!(
                c <= prev,
                "case {case}: capacity grew {prev} -> {c} after failing {failed:?}"
            );
            prev = c;
        }
        assert_eq!(count(&[]), full, "case {case}: capacity not restored");
    }
}

/// A completed rebuild releases admission capacity back to exactly the
/// pre-failure admit count: a system that lost and rebuilt a volume
/// admits the same number of mirrored streams as an identical system
/// that never failed.
#[test]
fn rebuild_restores_exact_admit_count() {
    let mut outer = Rng::new(0x4EB1);
    for case in 0..2 {
        let volumes = outer.range_inclusive(3, 4) as usize;
        let seed = outer.next_u64();
        let victim = outer.below(volumes as u64) as u32;
        let build = || {
            let mut cfg = SysConfig {
                seed,
                ..SysConfig::default()
            };
            cfg.server.volumes = volumes;
            cfg.server.placement = PlacementPolicy::Mirrored;
            cfg.server.buffer_budget = 1 << 40;
            let mut sys = System::new(cfg);
            let movies: Vec<_> = (0..16 * volumes)
                .map(|i| sys.record_movie(&format!("m{i}.mov"), StreamProfile::mpeg1(), 4.0))
                .collect();
            (sys, movies)
        };
        let admit_count = |sys: &mut System, movies: &[cras_repro::media::Movie]| {
            movies
                .iter()
                .take_while(|m| sys.add_cras_player(m, 1).is_ok())
                .count()
        };
        let (mut control, cm) = build();
        let (mut sys, sm) = build();
        sys.fail_volume(victim);
        sys.attach_replacement(victim);
        let mut guard = 0;
        while sys.rebuild_active() && guard < 600 {
            sys.run_for(Duration::from_secs(1));
            guard += 1;
        }
        assert!(!sys.rebuild_active(), "case {case}: rebuild never finished");
        let healthy = admit_count(&mut control, &cm);
        let rebuilt = admit_count(&mut sys, &sm);
        assert!(healthy >= volumes, "case {case}: only {healthy} admitted");
        assert_eq!(
            rebuilt, healthy,
            "case {case}: rebuild did not restore capacity"
        );
    }
}

/// A cache-served follower receives byte-identical data to a
/// disk-served run: with the interval cache on, the follower's buffer
/// holds exactly the same chunk (index, size) at every media position
/// as the identical run with the cache off — only the data path
/// changed, never the data or its timing.
#[test]
fn cache_served_follower_gets_byte_identical_data() {
    let mut outer = Rng::new(0xCAFE);
    for case in 0..5 {
        let secs = outer.f64_range(15.0, 25.0);
        let follow_tick = outer.range_inclusive(4, 8);
        let seed = outer.next_u64();
        let run = |budget: u64| {
            let mut rng = Rng::new(seed);
            let table = generate_chunks(&StreamProfile::mpeg1(), secs, &mut rng);
            let extents = vec![Extent {
                file_offset: 0,
                disk_block: 10_000,
                nblocks: table.total_bytes().div_ceil(512) as u32,
            }];
            let cfg = ServerConfig {
                cache_budget: budget,
                buffer_budget: 16 << 20,
                ..ServerConfig::default()
            };
            let mut srv = CrasServer::new(DiskParams::paper_table4(), cfg);
            let leader = srv.open("m", table.clone(), extents.clone()).unwrap();
            srv.start(leader, Instant::ZERO);
            let mut follower = None;
            let mut begin = Instant::ZERO;
            let mut log = Vec::new();
            for k in 0..40u64 {
                let now = Instant::ZERO + Duration::from_millis(k * 500);
                if follower.is_none() && k == follow_tick {
                    let id = srv.open("m", table.clone(), extents.clone()).unwrap();
                    begin = srv.start(id, now);
                    follower = Some(id);
                }
                let rep = srv.interval_tick(now);
                assert!(!rep.overran, "case {case} tick {k}");
                for r in &rep.reqs {
                    srv.io_done(r.id, now + Duration::from_millis(100));
                }
                // What the follower's client would consume right now.
                if let Some(f) = follower {
                    if now >= begin {
                        let media = now.since(begin);
                        log.push(srv.get(f, media).map(|c| (c.index, c.size)));
                    }
                }
            }
            let hits = srv.cache().stats().hit_bytes;
            (log, hits)
        };
        let (disk_log, no_hits) = run(0);
        let (cache_log, hits) = run(64 << 20);
        assert_eq!(no_hits, 0, "case {case}");
        assert!(hits > 0, "case {case}: follower was never cache-fed");
        assert!(
            disk_log.iter().any(|e| e.is_some()),
            "case {case}: follower never consumed anything"
        );
        assert_eq!(disk_log, cache_log, "case {case}");
    }
}

/// Cache-admitted stream count is monotone in the cache budget: the
/// same Zipf arrival sequence never admits fewer viewers (total or
/// cache-admitted) at a larger budget.
#[test]
fn cache_admissions_monotone_in_budget() {
    let mut outer = Rng::new(0xCAB0);
    for case in 0..3 {
        let b1 = outer.below(32) << 20;
        let b2 = b1 + ((1 + outer.below(32)) << 20);
        let (_t, _f, outs) = cras_repro::workload::cache_sharing::sweep(
            &[b1, b2],
            18,
            8,
            Duration::from_millis(1500),
            Duration::from_secs(6),
            outer.next_u64(),
        );
        assert!(
            outs[1].admitted >= outs[0].admitted
                && outs[1].cache_admitted >= outs[0].cache_admitted,
            "case {case}: not monotone {outs:?}"
        );
        for o in &outs {
            assert_eq!(o.dropped, 0, "case {case}: {o:?}");
            assert_eq!(o.overruns, 0, "case {case}: {o:?}");
        }
    }
}

/// When the leader stops, followers degrade to disk admission without
/// drops when capacity allows: the interval breaks, the follower reads
/// from the spindle again, and no deadline is ever missed.
#[test]
fn leader_stop_degrades_follower_to_disk_without_drops() {
    let mut outer = Rng::new(0xDE6A);
    for case in 0..5 {
        let stop_tick = outer.range_inclusive(8, 14);
        let seed = outer.next_u64();
        let mut rng = Rng::new(seed);
        let table = generate_chunks(&StreamProfile::mpeg1(), 25.0, &mut rng);
        let extents = vec![Extent {
            file_offset: 0,
            disk_block: 10_000,
            nblocks: table.total_bytes().div_ceil(512) as u32,
        }];
        let cfg = ServerConfig {
            cache_budget: 8 << 20,
            buffer_budget: 16 << 20,
            ..ServerConfig::default()
        };
        let mut srv = CrasServer::new(DiskParams::paper_table4(), cfg);
        let leader = srv.open("m", table.clone(), extents.clone()).unwrap();
        srv.start(leader, Instant::ZERO);
        let mut follower = None;
        let mut follower_reqs = 0usize;
        for k in 0..36u64 {
            let now = Instant::ZERO + Duration::from_millis(k * 500);
            if k == 6 {
                let id = srv
                    .open("m", table.clone(), extents.clone())
                    .expect("disk has room for the follower");
                assert!(
                    srv.stream(id).cache_state.is_cached(),
                    "case {case}: follower not cache-fed"
                );
                srv.start(id, now);
                follower = Some(id);
            }
            if k == stop_tick {
                srv.stop(leader, now);
            }
            let rep = srv.interval_tick(now);
            assert!(!rep.overran, "case {case} tick {k}: deadline missed");
            for r in &rep.reqs {
                if Some(r.stream) == follower {
                    follower_reqs += 1;
                }
                srv.io_done(r.id, now + Duration::from_millis(100));
            }
        }
        let f = follower.unwrap();
        assert!(
            !srv.stream(f).cache_state.is_cached(),
            "case {case}: interval never broke"
        );
        assert!(srv.cache().stats().interval_breaks >= 1, "case {case}");
        assert!(
            follower_reqs > 0,
            "case {case}: follower never fell back to disk reads"
        );
        assert_eq!(srv.cache().pinned_frames(), 0, "case {case}: leaked pins");
    }
}

/// No departing stream leaks pins: after every follower has stopped,
/// sought far away, or closed, the pinned-frame count and the cache
/// reservation ledger both return to zero in the same call — not at
/// some later eviction sweep.
#[test]
fn follower_departure_never_leaks_pins() {
    let mut outer = Rng::new(0xF1A5);
    for case in 0..10 {
        let n_followers = outer.range_inclusive(1, 3) as usize;
        let ops: Vec<u64> = (0..n_followers).map(|_| outer.below(3)).collect();
        let seed = outer.next_u64();
        let mut rng = Rng::new(seed);
        let table = generate_chunks(&StreamProfile::mpeg1(), 25.0, &mut rng);
        let extents = vec![Extent {
            file_offset: 0,
            disk_block: 10_000,
            nblocks: table.total_bytes().div_ceil(512) as u32,
        }];
        let cfg = ServerConfig {
            cache_budget: 16 << 20,
            buffer_budget: 16 << 20,
            ..ServerConfig::default()
        };
        let mut srv = CrasServer::new(DiskParams::paper_table4(), cfg);
        let leader = srv.open("m", table.clone(), extents.clone()).unwrap();
        srv.start(leader, Instant::ZERO);
        let mut followers = Vec::new();
        let mut now = Instant::ZERO;
        for k in 0..14u64 {
            now = Instant::ZERO + Duration::from_millis(k * 500);
            if k >= 6 && followers.len() < n_followers && k % 2 == 0 {
                let id = srv.open("m", table.clone(), extents.clone()).unwrap();
                srv.start(id, now);
                followers.push(id);
            }
            let rep = srv.interval_tick(now);
            for r in &rep.reqs {
                srv.io_done(r.id, now + Duration::from_millis(100));
            }
        }
        assert!(
            srv.cache().pinned_frames() > 0,
            "case {case}: no pins to test"
        );
        // Every follower departs by a random route; none may leave a
        // pin or a reservation behind.
        let far = Duration::from_secs_f64(table.total_duration().as_secs_f64() * 0.9);
        for (i, &id) in followers.iter().enumerate() {
            match ops[i] {
                0 => srv.stop(id, now),
                1 => srv.seek(id, now, far),
                _ => srv.close(id),
            }
        }
        assert_eq!(srv.cache().pinned_frames(), 0, "case {case}: leaked pins");
        assert_eq!(srv.cache().reserved(), 0, "case {case}: leaked reservation");
    }
}

/// DESIGN §16: with a zero cache budget the popularity machinery —
/// hot-set tracking, prefix residency, deferred admission — must be
/// completely inert. A full system run with the manager switched on
/// but no memory to pin stays bit-identical to the default (uncached)
/// configuration: same canonical metrics, same event count.
#[test]
fn zero_cache_budget_is_bit_identical_to_uncached() {
    let run = |manager_on: bool| {
        let mut cfg = SysConfig {
            seed: 0x0CAC,
            ..SysConfig::default()
        };
        if manager_on {
            cfg.server.cache_budget = 0;
            cfg.server.prefix_secs = Duration::from_secs(5);
            cfg.server.hot_set = 4;
        }
        let mut sys = System::new(cfg);
        let a = sys.record_movie("a.mov", StreamProfile::mpeg1(), 6.0);
        let b = sys.record_movie("b.mov", StreamProfile::mpeg1(), 6.0);
        let clients: Vec<_> = [&a, &a, &b]
            .iter()
            .map(|m| sys.add_cras_player(m, 1).expect("admission"))
            .collect();
        for c in clients {
            sys.start_playback(c);
        }
        sys.run_for(Duration::from_secs(10));
        (sys.metrics.canonical_json(), sys.engine.dispatched())
    };
    assert_eq!(run(false), run(true));
}

/// Deterministic RNG forks never correlate with their parent stream.
#[test]
fn rng_forks_are_decorrelated() {
    let mut seeds = Rng::new(0x5EED);
    for _ in 0..200 {
        let seed = seeds.next_u64();
        let mut parent = Rng::new(seed);
        let mut child = parent.fork();
        let matches = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(matches < 3, "seed {seed}");
    }
}
