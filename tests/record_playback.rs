//! The full §4 loop: record a stream at constant rate through the
//! Recorder extension, finalize its control table, then play the same
//! file back through CRAS — the write path feeding the read path.

use cras_repro::core::{Recorder, ServerConfig};
use cras_repro::disk::calibrate::calibrate;
use cras_repro::disk::{DiskDevice, DiskRequest};
use cras_repro::media::{Movie, StreamProfile};
use cras_repro::sim::{Duration, Instant};
use cras_repro::sys::{SysConfig, System};

#[test]
fn record_then_play_roundtrip() {
    let mut sys = System::new(SysConfig::default());

    // 1. Pre-allocate the capture file in the system's file system (§4:
    //    "allocate data blocks in advance when a file is created or
    //    expanded").
    let secs = 12.0f64;
    let bytes = (secs * 187_500.0) as u64 + 8192;
    let ino = sys.ufs_mut().create("capture.mov").expect("fresh fs");
    sys.ufs_mut()
        .preallocate(ino, bytes)
        .expect("space available");
    let extents = sys.ufs().extent_map(ino);

    // 2. Record at constant rate through the Recorder (driven against a
    //    standalone disk instance, as a capture box would run).
    let mut scratch: DiskDevice<u8> = DiskDevice::st32550n();
    let cal = calibrate(&mut scratch, 64 * 1024);
    let mut rec_disk: DiskDevice<u64> = DiskDevice::st32550n();
    let mut rec = Recorder::new(cal.params, ServerConfig::default());
    let session = rec
        .open_write(187_500.0, 6_250.0, extents.clone())
        .expect("write admission passes");
    let frame = Duration::from_secs_f64(1.0 / 30.0);
    for tick in 0..(secs as u64 * 2) {
        for _ in 0..15 {
            rec.stage_chunk(session, frame, 6_250);
        }
        let now = Instant::ZERO + Duration::from_millis(500) * tick;
        for w in rec.interval_tick(now) {
            let fin = rec_disk
                .submit(now, DiskRequest::rt_write(w.block, w.nblocks, w.id.0))
                .expect("sequential writes drain between intervals");
            rec_disk.complete(fin);
            rec.io_done(w.id);
        }
    }
    let table = rec.finalize(session);
    assert_eq!(table.len(), secs as usize * 30);
    assert!((table.avg_rate() - 187_500.0).abs() < 100.0);

    // 3. Play the recorded file back through CRAS in the same system.
    let movie = Movie {
        name: "capture.mov".to_string(),
        ino,
        table,
        profile: StreamProfile::mpeg1(),
    };
    let client = sys.add_cras_player(&movie, 1).expect("admitted");
    let start = sys.start_playback(client);
    sys.run_until(start + Duration::from_secs(secs as u64 + 2));

    let p = &sys.players[&client.0];
    assert!(p.done, "playback finished");
    assert_eq!(p.stats.frames_shown, secs as u64 * 30);
    assert_eq!(p.stats.frames_dropped, 0);
    let (_, max_delay) = p.delay_summary();
    assert!(max_delay < 0.01, "max delay {max_delay}");
    // The playback actually read the pre-allocated extents.
    assert!(sys.metrics.cras_read_bytes as f64 > 0.95 * secs * 187_500.0);
}
