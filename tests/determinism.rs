//! Determinism: every experiment is a pure function of its seed.
#![allow(clippy::field_reassign_with_default)]

use cras_repro::core::PlacementPolicy;
use cras_repro::media::StreamProfile;
use cras_repro::sim::Duration;
use cras_repro::sys::{MoviePlacement, SysConfig, System};

fn run_once(seed: u64) -> (u64, u64, Vec<(u64, u64)>) {
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    let mut sys = System::new(cfg);
    let movie = sys.record_movie("det.mov", StreamProfile::jpeg_vbr(187_500.0), 6.0);
    let noise = sys.record_movie("noise.mov", StreamProfile::mpeg1(), 10.0);
    let c = sys.add_cras_player(&movie, 1).unwrap();
    sys.add_bg_reader(&noise);
    sys.start_bg();
    sys.start_playback(c);
    sys.run_for(Duration::from_secs(9));
    let p = &sys.players[&c.0];
    let trace: Vec<(u64, u64)> = p
        .stats
        .delays
        .points()
        .iter()
        .map(|&(t, d)| (t.as_nanos(), (d * 1e9) as u64))
        .collect();
    (sys.metrics.cras_read_bytes, sys.engine.dispatched(), trace)
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let a = run_once(12345);
    let b = run_once(12345);
    assert_eq!(a.0, b.0, "bytes differ");
    assert_eq!(a.1, b.1, "event counts differ");
    assert_eq!(a.2, b.2, "frame traces differ");
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = run_once(1);
    let b = run_once(2);
    // VBR sizes and file placement depend on the seed, so bytes or the
    // event count must differ.
    assert!(
        a.0 != b.0 || a.1 != b.1 || a.2 != b.2,
        "seeds 1 and 2 produced bit-identical runs"
    );
}

/// A mixed workload touching every placement and data path the server
/// has: a mirrored run that loses its primary volume and rebuilds onto
/// a replacement, and a rotating-parity run with an interval-cache
/// follower that loses one spindle of the band mid-play. Returns the
/// concatenated canonical metrics serialization of both runs.
fn run_mixed(seed: u64) -> String {
    let mut out = String::new();

    // Mirrored + failover + rebuild.
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    cfg.server.volumes = 3;
    cfg.server.placement = PlacementPolicy::Mirrored;
    let mut sys = System::new(cfg);
    let m = sys.record_movie("mir.mov", StreamProfile::mpeg1(), 6.0);
    let c = sys.add_cras_player(&m, 1).unwrap();
    let start = sys.start_playback(c);
    sys.run_until(start + Duration::from_secs(1));
    let Some(&MoviePlacement::Mirrored { primary, .. }) = sys.placement("mir.mov") else {
        panic!("expected mirrored placement");
    };
    sys.fail_volume(primary);
    sys.attach_replacement(primary);
    sys.run_for(Duration::from_secs(8));
    assert!(sys.players[&c.0].done, "mirrored player hung");
    out.push_str(&sys.metrics.canonical_json());
    out.push('\n');

    // Rotating parity + interval cache + one spindle lost in the band.
    let mut cfg = SysConfig::default();
    cfg.seed = seed ^ 0x9E37_79B9_7F4A_7C15;
    cfg.server.volumes = 3;
    cfg.server.placement = PlacementPolicy::Parity { group: 3 };
    cfg.server.cache_budget = 64 << 20;
    let mut sys = System::new(cfg);
    let m = sys.record_movie("par.mov", StreamProfile::mpeg1(), 6.0);
    let lead = sys.add_cras_player(&m, 1).unwrap();
    let start = sys.start_playback(lead);
    // The follower opens one interval behind the leader, close enough
    // to ride the leader's cached window.
    sys.run_until(start);
    let follow = sys.add_cras_player(&m, 1).unwrap();
    sys.start_playback(follow);
    sys.run_until(start + Duration::from_secs(2));
    sys.fail_volume(1);
    sys.run_for(Duration::from_secs(8));
    assert!(sys.players[&lead.0].done, "parity leader hung");
    assert!(sys.players[&follow.0].done, "parity follower hung");
    out.push_str(&sys.metrics.canonical_json());
    out.push('\n');
    out
}

#[test]
fn mixed_workload_metrics_are_byte_identical_across_replays() {
    let a = run_mixed(0xD1CE);
    let b = run_mixed(0xD1CE);
    assert_eq!(a, b, "same seed must reproduce the metrics byte for byte");
    // The serialization actually reflects the workload: both the
    // failover path and the cache path left their marks.
    assert!(a.contains("\"volume_failed_at\":") && !a.contains("\"volume_failed_at\":null"));
    let c = run_mixed(0xD1CF);
    assert_ne!(a, c, "a different seed should perturb something");
}

#[test]
fn calibration_is_deterministic() {
    use cras_repro::disk::calibrate::calibrate;
    use cras_repro::disk::DiskDevice;
    let run = || {
        let mut d: DiskDevice<u8> = DiskDevice::st32550n();
        let cal = calibrate(&mut d, 64 * 1024);
        (
            cal.params.transfer_rate.to_bits(),
            cal.params.t_seek_max.as_nanos(),
            cal.params.t_seek_min.as_nanos(),
        )
    };
    assert_eq!(run(), run());
}
