//! Determinism: every experiment is a pure function of its seed.
#![allow(clippy::field_reassign_with_default)]

use cras_repro::media::StreamProfile;
use cras_repro::sim::Duration;
use cras_repro::sys::{SysConfig, System};

fn run_once(seed: u64) -> (u64, u64, Vec<(u64, u64)>) {
    let mut cfg = SysConfig::default();
    cfg.seed = seed;
    let mut sys = System::new(cfg);
    let movie = sys.record_movie("det.mov", StreamProfile::jpeg_vbr(187_500.0), 6.0);
    let noise = sys.record_movie("noise.mov", StreamProfile::mpeg1(), 10.0);
    let c = sys.add_cras_player(&movie, 1).unwrap();
    sys.add_bg_reader(&noise);
    sys.start_bg();
    sys.start_playback(c);
    sys.run_for(Duration::from_secs(9));
    let p = &sys.players[&c.0];
    let trace: Vec<(u64, u64)> = p
        .stats
        .delays
        .points()
        .iter()
        .map(|&(t, d)| (t.as_nanos(), (d * 1e9) as u64))
        .collect();
    (sys.metrics.cras_read_bytes, sys.engine.dispatched(), trace)
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let a = run_once(12345);
    let b = run_once(12345);
    assert_eq!(a.0, b.0, "bytes differ");
    assert_eq!(a.1, b.1, "event counts differ");
    assert_eq!(a.2, b.2, "frame traces differ");
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = run_once(1);
    let b = run_once(2);
    // VBR sizes and file placement depend on the seed, so bytes or the
    // event count must differ.
    assert!(
        a.0 != b.0 || a.1 != b.1 || a.2 != b.2,
        "seeds 1 and 2 produced bit-identical runs"
    );
}

#[test]
fn calibration_is_deterministic() {
    use cras_repro::disk::calibrate::calibrate;
    use cras_repro::disk::DiskDevice;
    let run = || {
        let mut d: DiskDevice<u8> = DiskDevice::st32550n();
        let cal = calibrate(&mut d, 64 * 1024);
        (
            cal.params.transfer_rate.to_bits(),
            cal.params.t_seek_max.as_nanos(),
            cal.params.t_seek_min.as_nanos(),
        )
    };
    assert_eq!(run(), run());
}
