//! The paper's central layout decision: "CRAS adopts the same disk layout
//! policy as the Unix file system. Thus, both file systems access the same
//! files." One movie file, consumed simultaneously through CRAS (constant
//! rate) and through UFS (a frame-stepping reader, the paper's
//! non-real-time path for Fast Forward / Step by Frame).

use cras_repro::media::StreamProfile;
use cras_repro::sim::Duration;
use cras_repro::sys::{DiskTag, SysConfig, System};
use cras_repro::ufs::layout::fsblock_to_disk;

#[test]
fn cras_and_ufs_read_the_same_file() {
    let mut sys = System::new(SysConfig::default());
    let movie = sys.record_movie("shared.mov", StreamProfile::mpeg1(), 10.0);

    // One CRAS player and one UFS player on the *same inode*.
    let cras_client = sys.add_cras_player(&movie, 1).expect("admitted");
    let ufs_client = sys.add_ufs_player(&movie, 3); // Frame-stepping at 10 fps.
    sys.start_playback(cras_client);
    sys.start_playback(ufs_client);
    sys.run_for(Duration::from_secs(14));

    let cras_p = &sys.players[&cras_client.0];
    let ufs_p = &sys.players[&ufs_client.0];
    assert!(cras_p.done && ufs_p.done);
    assert_eq!(cras_p.stats.frames_dropped, 0);
    assert_eq!(cras_p.stats.frames_shown, 300);
    assert_eq!(ufs_p.stats.frames_shown, 100);

    // Both paths really hit the same physical blocks: the CRAS extents
    // cover the UFS data blocks of the inode.
    let extents = sys.ufs().extent_map(movie.ino);
    let inode = sys.ufs().inode(movie.ino);
    for fb in 0..inode.nblocks() {
        let data = inode.bmap(fb).expect("mapped").data;
        let disk_block = fsblock_to_disk(data);
        let covered = extents
            .iter()
            .any(|e| disk_block >= e.disk_block && disk_block < e.disk_block + e.nblocks as u64);
        assert!(covered, "block {fb} not covered by the CRAS extent map");
    }
}

#[test]
fn rt_and_normal_traffic_share_the_disk() {
    let mut sys = System::new(SysConfig::default());
    let movie = sys.record_movie("shared.mov", StreamProfile::mpeg1(), 8.0);
    let c = sys.add_cras_player(&movie, 1).expect("admitted");
    let u = sys.add_ufs_player(&movie, 1);
    sys.start_playback(c);
    sys.start_playback(u);
    sys.run_for(Duration::from_secs(12));
    // The device saw both classes.
    let (rt_ops, normal_ops) = sys.disk().stats().ops;
    assert!(rt_ops > 0, "CRAS issued real-time reads");
    assert!(normal_ops > 0, "UFS issued normal reads");
    // No cross-contamination of tags is possible by construction; spot
    // check the stats split: RT bytes match CRAS's accounting.
    assert_eq!(sys.disk().stats().bytes.0, sys.metrics.cras_read_bytes);
    let _ = DiskTag::Raw(0); // Type is exported and usable downstream.
}
