//! Crash recovery: kill a `System` mid-interval at a randomized tick,
//! rebuild a fresh instance from its transition journal, and check the
//! recovered server matches an uninterrupted reference run — the same
//! admitted-stream set, every remaining frame delivered, zero drops.
#![allow(clippy::field_reassign_with_default)]

use cras_repro::media::StreamProfile;
use cras_repro::sim::{Duration, Rng};
use cras_repro::sys::{ClientId, SysConfig, System};

/// Builds the workload both runs share: two movies, two admitted
/// players (the second is stopped before the crash instant to exercise
/// the `Stopped` journal record), both started immediately.
fn setup(cfg: SysConfig) -> (System, ClientId, ClientId) {
    let mut sys = System::new(cfg);
    let a = sys.record_movie("keep.mov", StreamProfile::mpeg1(), 5.0);
    let b = sys.record_movie("quit.mov", StreamProfile::jpeg_vbr(187_500.0), 5.0);
    let ca = sys.add_cras_player(&a, 1).expect("admission");
    let cb = sys.add_cras_player(&b, 1).expect("admission");
    sys.start_playback(ca);
    sys.start_playback(cb);
    (sys, ca, cb)
}

#[test]
fn recovery_redelivers_every_remaining_frame_with_zero_drops() {
    let mut rng = Rng::new(0xC8A5);
    for case in 0..3 {
        let mut cfg = SysConfig::default();
        cfg.seed = rng.next_u64();

        // Reference: the same workload, never interrupted. The survivor
        // delivers every frame; the quitter is stopped at `stop_at`.
        let stop_at = sys_start() + Duration::from_millis(rng.range_inclusive(500, 1200));
        let crash_at = sys_start() + Duration::from_millis(rng.range_inclusive(1500, 4000));
        let (mut reference, ra, rb) = setup(cfg);
        reference.run_until(stop_at);
        reference.stop_playback(rb);
        reference.run_for(Duration::from_secs(10));
        assert!(reference.players[&ra.0].done, "case {case}: reference hung");
        assert_eq!(reference.players[&ra.0].stats.frames_dropped, 0);

        // Victim: identical run, killed at `crash_at`. Only the journal
        // survives the crash.
        let (mut victim, _va, vb) = setup(cfg);
        victim.run_until(stop_at);
        victim.stop_playback(vb);
        victim.run_until(crash_at);
        let journal = victim.journal().clone();
        drop(victim);

        // Recover and run to completion.
        let (mut rec, remap) = System::recover(cfg, &journal, crash_at);
        assert_eq!(
            remap.keys().copied().collect::<Vec<_>>(),
            vec![ra.0],
            "case {case}: only the surviving admission is recovered"
        );
        rec.run_for(Duration::from_secs(12));
        let new_id = remap[&ra.0];
        let p = &rec.players[&new_id];
        assert!(p.done, "case {case}: recovered player never finished");
        assert_eq!(
            p.stats.frames_dropped, 0,
            "case {case}: recovered stream dropped frames"
        );

        // Subsequent delivery matches the uninterrupted run: the
        // recovered player shows exactly the frames the reference run
        // had not yet delivered at the crash instant (resume anchors at
        // the first frame due strictly after `crash_at`).
        let rp = &reference.players[&ra.0];
        let mut remaining = 0u64;
        let mut k = 0u32;
        while let Some(ch) = rp.table.get(k) {
            if rp.playback_start + ch.timestamp.mul_f64(rp.time_scale) > crash_at {
                remaining += 1;
            }
            k += rp.stride;
        }
        assert!(
            remaining > 0,
            "case {case}: crash landed after the movie ended"
        );
        assert_eq!(
            p.stats.frames_shown, remaining,
            "case {case}: recovered delivery diverged from the reference"
        );
    }
}

/// Playback begins after the 1 s initial delay (see the end-to-end
/// suite); offsets above are relative to it.
fn sys_start() -> cras_repro::sim::Instant {
    cras_repro::sim::Instant::ZERO + Duration::from_secs(1)
}

#[test]
fn recovered_journal_supports_a_second_crash() {
    let mut cfg = SysConfig::default();
    cfg.seed = 77;
    let (mut victim, ca, _cb) = setup(cfg);
    victim.run_until(sys_start() + Duration::from_secs(2));
    let j1 = victim.journal().clone();
    drop(victim);

    let crash1 = sys_start() + Duration::from_secs(2);
    let (mut rec1, map1) = System::recover(cfg, &j1, crash1);
    rec1.run_for(Duration::from_secs(1));
    // The recovered instance re-journals everything it replays, so a
    // second crash recovers from *its* journal alone.
    let crash2 = rec1.now();
    let j2 = rec1.journal().clone();
    drop(rec1);
    let (mut rec2, map2) = System::recover(cfg, &j2, crash2);
    rec2.run_for(Duration::from_secs(12));
    let id = map2[&map1[&ca.0]];
    let p = &rec2.players[&id];
    assert!(p.done, "doubly-recovered player never finished");
    assert_eq!(p.stats.frames_dropped, 0, "drops after double recovery");
}
