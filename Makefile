# Convenience targets for the CRAS reproduction.

.PHONY: all build test bench figures figures-quick examples clippy fmt clean

all: build

build:
	cargo build --workspace --release

test:
	cargo test --workspace

bench:
	cargo bench --workspace

# Regenerate every paper figure/table (writes results/*.json).
figures:
	cargo run -p cras-bench --release --bin all

figures-quick:
	cargo run -p cras-bench --release --bin all -- --quick

examples:
	cargo run --release --example quickstart
	cargo run --release --example movie_player
	cargo run --release --example qos_player
	cargo run --release --example admission_probe
	cargo run --release --example recorder
	cargo run --release --example fast_forward
	cargo run --release --example distributed_player

clippy:
	cargo clippy --workspace --all-targets

fmt:
	cargo fmt --all

clean:
	cargo clean
	rm -rf results
